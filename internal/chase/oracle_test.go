package chase

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"codb/internal/cq"
	"codb/internal/relation"
)

func intT(vs ...int) relation.Tuple {
	t := make(relation.Tuple, len(vs))
	for i, v := range vs {
		t[i] = relation.Int(v)
	}
	return t
}

func TestFixpointChain(t *testing.T) {
	// A <- B <- C copy chain: everything flows to A.
	rules := []*cq.Rule{
		cq.MustParseRule("r1", `A.r(x) <- B.r(x)`),
		cq.MustParseRule("r2", `B.r(x) <- C.r(x)`),
	}
	start := map[string]relation.Instance{
		"C": {}, "B": {}, "A": {},
	}
	start["C"] = relation.NewInstance()
	start["C"].Insert("r", intT(1))
	start["C"].Insert("r", intT(2))
	start["B"] = relation.NewInstance()
	start["B"].Insert("r", intT(3))
	start["A"] = relation.NewInstance()

	out, stats, err := Fixpoint(rules, start, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(out["A"]["r"]); got != 3 {
		t.Errorf("A.r has %d tuples, want 3", got)
	}
	if got := len(out["B"]["r"]); got != 3 {
		t.Errorf("B.r has %d tuples, want 3", got)
	}
	if stats.FactsAdded != 5 {
		t.Errorf("FactsAdded = %d, want 5", stats.FactsAdded)
	}
	// Input not modified.
	if start["A"].Size() != 0 {
		t.Error("Fixpoint modified its input")
	}
}

func TestFixpointCycleTerminates(t *testing.T) {
	// Copy cycle A <-> B: union both ways, then stop.
	rules := []*cq.Rule{
		cq.MustParseRule("r1", `A.r(x) <- B.r(x)`),
		cq.MustParseRule("r2", `B.r(x) <- A.r(x)`),
	}
	start := map[string]relation.Instance{"A": relation.NewInstance(), "B": relation.NewInstance()}
	start["A"].Insert("r", intT(1))
	start["B"].Insert("r", intT(2))
	out, _, err := Fixpoint(rules, start, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"A", "B"} {
		if got := len(out[n]["r"]); got != 2 {
			t.Errorf("%s.r has %d tuples, want 2", n, got)
		}
	}
}

func TestFixpointExistentialCycleDepthBound(t *testing.T) {
	// Non-terminating chase: A.r(x,z) <- B.s(x); B.s(z) <- A.r(x,z).
	// The depth bound must cut it off.
	rules := []*cq.Rule{
		cq.MustParseRule("r1", `A.r(x, z) <- B.s(x)`),
		cq.MustParseRule("r2", `B.s(z) <- A.r(x, z)`),
	}
	start := map[string]relation.Instance{"B": relation.NewInstance()}
	start["B"].Insert("s", intT(1))
	out, stats, err := Fixpoint(rules, start, Options{MaxDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	if stats.SkippedAtDepth == 0 {
		t.Error("depth bound never triggered on a diverging chase")
	}
	// s holds the seed plus one witness per permitted depth: 1 + 4.
	if got := len(out["B"]["s"]); got != 5 {
		t.Errorf("B.s has %d tuples, want 5", got)
	}
	if got := len(out["A"]["r"]); got != 4 {
		t.Errorf("A.r has %d tuples, want 4", got)
	}
}

func TestFixpointExistentialSatisfiedByMemo(t *testing.T) {
	// Terminating existential cycle: the same frontier binding re-fires but
	// the memo returns the same null, so the instance stabilises.
	rules := []*cq.Rule{
		cq.MustParseRule("r1", `A.r(x, z) <- B.s(x)`),
		cq.MustParseRule("r2", `B.s(x) <- A.r(x, y)`),
	}
	start := map[string]relation.Instance{"B": relation.NewInstance()}
	start["B"].Insert("s", intT(1))
	out, _, err := Fixpoint(rules, start, Options{MaxDepth: 10})
	if err != nil {
		t.Fatal(err)
	}
	// s(1) -> r(1, z1) -> s(1) (already there): stable.
	if got := len(out["B"]["s"]); got != 1 {
		t.Errorf("B.s has %d tuples, want 1", got)
	}
	if got := len(out["A"]["r"]); got != 1 {
		t.Errorf("A.r has %d tuples, want 1", got)
	}
}

func TestFixpointJoinRule(t *testing.T) {
	rules := []*cq.Rule{
		cq.MustParseRule("r1", `A.pair(x, y) <- B.e(x, z), B.e(z, y)`),
	}
	start := map[string]relation.Instance{"B": relation.NewInstance()}
	start["B"].Insert("e", intT(1, 2))
	start["B"].Insert("e", intT(2, 3))
	out, _, err := Fixpoint(rules, start, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !out["A"].Has("pair", intT(1, 3)) || out["A"].Size() != 1 {
		t.Errorf("A = %v", out["A"])
	}
}

func TestSemiNaiveMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		rules, start := randomNetwork(rnd)
		naive, _, err1 := Fixpoint(rules, start, Options{MaxDepth: 4})
		semi, _, err2 := FixpointSemiNaive(rules, start, Options{MaxDepth: 4})
		if err1 != nil || err2 != nil {
			t.Logf("errors: %v %v", err1, err2)
			return false
		}
		if len(naive) != len(semi) {
			return false
		}
		for node, in := range naive {
			// Deterministic nulls: plain equality must hold.
			if !relation.EqualUpToNulls(in, semi[node]) {
				t.Logf("node %s: naive=%v semi=%v", node, in, semi[node])
				return false
			}
			if canon := in.Size(); canon != semi[node].Size() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// randomNetwork builds 3-5 nodes with unary/binary relations, random copy /
// projection / join / existential rules between random node pairs, and
// random seed data.
func randomNetwork(rnd *rand.Rand) ([]*cq.Rule, map[string]relation.Instance) {
	nNodes := rnd.Intn(3) + 3
	nodes := make([]string, nNodes)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("N%d", i)
	}
	templates := []string{
		`%s.u(x) <- %s.u(x)`,
		`%s.u(x) <- %s.b(x, y)`,
		`%s.b(x, y) <- %s.b(x, y)`,
		`%s.b(x, z) <- %s.b(x, y), %s.b(y, z)`,
		`%s.b(x, z) <- %s.u(x)`, // existential z
		`%s.u(x) <- %s.b(x, y), y > 1`,
	}
	nRules := rnd.Intn(5) + 2
	var rules []*cq.Rule
	for i := 0; i < nRules; i++ {
		tpl := templates[rnd.Intn(len(templates))]
		tgt := nodes[rnd.Intn(nNodes)]
		src := nodes[rnd.Intn(nNodes)]
		if tgt == src {
			continue // coordination rules connect distinct peers
		}
		var text string
		if tpl == templates[3] {
			text = fmt.Sprintf(tpl, tgt, src, src)
		} else {
			text = fmt.Sprintf(tpl, tgt, src)
		}
		rules = append(rules, cq.MustParseRule(fmt.Sprintf("r%d", i), text))
	}
	start := make(map[string]relation.Instance, nNodes)
	for _, n := range nodes {
		in := relation.NewInstance()
		for i, k := 0, rnd.Intn(5); i < k; i++ {
			in.Insert("u", intT(rnd.Intn(4)))
		}
		for i, k := 0, rnd.Intn(5); i < k; i++ {
			in.Insert("b", intT(rnd.Intn(4), rnd.Intn(4)))
		}
		start[n] = in
	}
	return rules, start
}

func TestFixpointStrictEqualityNaiveVsSemiNaive(t *testing.T) {
	// Deterministic nulls mean the two strategies agree not just up to
	// renaming but on the exact labels.
	rules := []*cq.Rule{
		cq.MustParseRule("r1", `A.r(x, z) <- B.s(x)`),
		cq.MustParseRule("r2", `C.t(z) <- A.r(x, z)`),
	}
	start := map[string]relation.Instance{"B": relation.NewInstance()}
	start["B"].Insert("s", intT(1))
	start["B"].Insert("s", intT(2))
	naive, _, _ := Fixpoint(rules, start, Options{})
	semi, _, _ := FixpointSemiNaive(rules, start, Options{})
	for _, node := range []string{"A", "C"} {
		na, sa := naive[node].Tuples("r"), semi[node].Tuples("r")
		if node == "C" {
			na, sa = naive[node].Tuples("t"), semi[node].Tuples("t")
		}
		if len(na) != len(sa) {
			t.Fatalf("node %s: %d vs %d", node, len(na), len(sa))
		}
		for i := range na {
			if !na[i].Equal(sa[i]) {
				t.Errorf("node %s tuple %d: %v vs %v (labels must match exactly)", node, i, na[i], sa[i])
			}
		}
	}
}
