package chase

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"codb/internal/cq"
	"codb/internal/relation"
)

// TestFixpointIdempotent: chasing the fixpoint again adds nothing.
func TestFixpointIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		rules, start := randomNetwork(rnd)
		opts := Options{MaxDepth: 4}
		once, stats1, err := Fixpoint(rules, start, opts)
		if err != nil {
			return false
		}
		twice, stats2, err := Fixpoint(rules, once, opts)
		if err != nil {
			return false
		}
		_ = stats1
		if stats2.FactsAdded != 0 {
			t.Logf("seed %d: second chase added %d facts", seed, stats2.FactsAdded)
			return false
		}
		for node, in := range once {
			if in.Size() != twice[node].Size() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestFixpointMonotone: adding data never removes derived facts.
func TestFixpointMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		rules, start := randomNetwork(rnd)
		opts := Options{MaxDepth: 4}
		small, _, err := Fixpoint(rules, start, opts)
		if err != nil {
			return false
		}
		// Add one extra tuple somewhere and re-chase from the seeds.
		bigger := make(map[string]relation.Instance, len(start))
		for n, in := range start {
			bigger[n] = in.Clone()
		}
		var anyNode string
		for n := range bigger {
			anyNode = n
			break
		}
		if anyNode == "" {
			return true
		}
		bigger[anyNode].Insert("u", intT(7))
		big, _, err := Fixpoint(rules, bigger, opts)
		if err != nil {
			return false
		}
		for node, in := range small {
			for rel, m := range in {
				for _, tup := range m {
					if !big[node].Has(rel, tup) {
						t.Logf("seed %d: %s.%s%v lost after growing the input", seed, node, rel, tup)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkApplierFacts(b *testing.B) {
	r := cq.MustParseRule("r", `A.p(x, z) <- B.q(x, y)`)
	a, err := NewApplier(r, Options{})
	if err != nil {
		b.Fatal(err)
	}
	bindings := make([]relation.Tuple, 1000)
	for i := range bindings {
		bindings[i] = relation.Tuple{relation.Int(i)}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Facts(bindings)
	}
}

func BenchmarkFixpointChain(b *testing.B) {
	for _, n := range []int{4, 8} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var rules []*cq.Rule
			for i := 0; i < n-1; i++ {
				rules = append(rules, cq.MustParseRule(fmt.Sprintf("r%d", i),
					fmt.Sprintf(`N%d.u(x) <- N%d.u(x)`, i, i+1)))
			}
			start := make(map[string]relation.Instance)
			for i := 0; i < n; i++ {
				in := relation.NewInstance()
				for k := 0; k < 200; k++ {
					in.Insert("u", intT(i*1000+k))
				}
				start[fmt.Sprintf("N%d", i)] = in
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := FixpointSemiNaive(rules, start, Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
