package chase

import (
	"fmt"

	"codb/internal/cq"
	"codb/internal/relation"
)

// Fixpoint is the centralised oracle: it chases all rules over all node
// instances to a fixpoint, exactly the state the distributed global update
// must converge to. Used by correctness tests and by the naive-vs-semi-naive
// ablation.
//
// Instances are keyed by node name; a rule reads Body relations from
// start[rule.Source] and writes Head facts into the result for rule.Target.
// The deterministic null labels make the fixpoint independent of rule
// application order.
type FixpointStats struct {
	// Rounds is the number of full passes over the rule set.
	Rounds int
	// FactsAdded is the number of new tuples inserted across all nodes.
	FactsAdded int
	// SkippedAtDepth counts frontier bindings dropped by the depth bound.
	SkippedAtDepth int
}

// Fixpoint runs the oracle. The input map is not modified.
func Fixpoint(rules []*cq.Rule, start map[string]relation.Instance, opts Options) (map[string]relation.Instance, FixpointStats, error) {
	state := make(map[string]relation.Instance, len(start))
	for node, in := range start {
		state[node] = in.Clone()
	}
	appliers := make([]*Applier, len(rules))
	for i, r := range rules {
		a, err := NewApplier(r, opts)
		if err != nil {
			return nil, FixpointStats{}, fmt.Errorf("chase: rule %s: %w", r.ID, err)
		}
		appliers[i] = a
		if state[r.Source] == nil {
			state[r.Source] = relation.NewInstance()
		}
		if state[r.Target] == nil {
			state[r.Target] = relation.NewInstance()
		}
	}

	var stats FixpointStats
	for {
		stats.Rounds++
		changed := false
		for i, r := range rules {
			facts, err := Apply(r, state[r.Source], appliers[i])
			if err != nil {
				return nil, stats, fmt.Errorf("chase: rule %s: %w", r.ID, err)
			}
			target := state[r.Target]
			for _, f := range facts {
				if target.Insert(f.Rel, f.Tuple) {
					stats.FactsAdded++
					changed = true
				}
			}
		}
		if !changed {
			break
		}
		// A diverging chase with no depth bound would loop forever; guard
		// with a generous round limit proportional to the depth bound.
		if opts.MaxDepth > 0 && stats.Rounds > opts.MaxDepth*len(rules)+1_000 {
			break
		}
	}
	for _, a := range appliers {
		stats.SkippedAtDepth += a.Skipped
	}
	return state, stats, nil
}

// FixpointSemiNaive is the delta-driven variant of the oracle, mirroring
// what the distributed algorithm does: after the first full round, rules
// re-fire only against the tuples newly added to their body relations. Used
// by the A1 ablation benchmark; results must equal Fixpoint's.
func FixpointSemiNaive(rules []*cq.Rule, start map[string]relation.Instance, opts Options) (map[string]relation.Instance, FixpointStats, error) {
	state := make(map[string]relation.Instance, len(start))
	for node, in := range start {
		state[node] = in.Clone()
	}
	appliers := make([]*Applier, len(rules))
	for i, r := range rules {
		a, err := NewApplier(r, opts)
		if err != nil {
			return nil, FixpointStats{}, fmt.Errorf("chase: rule %s: %w", r.ID, err)
		}
		appliers[i] = a
		if state[r.Source] == nil {
			state[r.Source] = relation.NewInstance()
		}
		if state[r.Target] == nil {
			state[r.Target] = relation.NewInstance()
		}
	}

	var stats FixpointStats
	// deltas[node][rel] = tuples added in the previous round.
	deltas := make(map[string]map[string][]relation.Tuple)
	// Round 1: full evaluation.
	stats.Rounds++
	next := make(map[string]map[string][]relation.Tuple)
	addFact := func(node string, f Fact) {
		if state[node].Insert(f.Rel, f.Tuple) {
			stats.FactsAdded++
			if next[node] == nil {
				next[node] = make(map[string][]relation.Tuple)
			}
			next[node][f.Rel] = append(next[node][f.Rel], f.Tuple)
		}
	}
	for i, r := range rules {
		facts, err := Apply(r, state[r.Source], appliers[i])
		if err != nil {
			return nil, stats, err
		}
		for _, f := range facts {
			addFact(r.Target, f)
		}
	}
	deltas, next = next, nil

	for len(deltas) > 0 {
		stats.Rounds++
		next = make(map[string]map[string][]relation.Tuple)
		for i, r := range rules {
			nodeDeltas := deltas[r.Source]
			if nodeDeltas == nil {
				continue
			}
			for _, rel := range r.BodyRelations() {
				d := nodeDeltas[rel]
				if len(d) == 0 {
					continue
				}
				bindings, err := BindingsDelta(r, state[r.Source], rel, d, opts)
				if err != nil {
					return nil, stats, err
				}
				for _, f := range appliers[i].Facts(bindings) {
					addFact(r.Target, f)
				}
			}
		}
		deltas, next = next, nil
	}
	for _, a := range appliers {
		stats.SkippedAtDepth += a.Skipped
	}
	return state, stats, nil
}
