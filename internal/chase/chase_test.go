package chase

import (
	"strings"
	"testing"

	"codb/internal/cq"
	"codb/internal/relation"
)

func mustApplier(t *testing.T, rule *cq.Rule, opts Options) *Applier {
	t.Helper()
	a, err := NewApplier(rule, opts)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestCopyRuleNoExistentials(t *testing.T) {
	r := cq.MustParseRule("r1", `A.p(x, y) <- B.q(x, y)`)
	a := mustApplier(t, r, Options{})
	facts := a.Facts([]relation.Tuple{
		{relation.Int(1), relation.Str("a")},
		{relation.Int(2), relation.Str("b")},
	})
	if len(facts) != 2 {
		t.Fatalf("facts = %v", facts)
	}
	if facts[0].Rel != "p" || !facts[0].Tuple.Equal(relation.Tuple{relation.Int(1), relation.Str("a")}) {
		t.Errorf("fact 0 = %v", facts[0])
	}
}

func TestExistentialMinting(t *testing.T) {
	r := cq.MustParseRule("r1", `A.p(x, z) <- B.q(x)`)
	a := mustApplier(t, r, Options{})
	facts := a.Facts([]relation.Tuple{{relation.Int(1)}, {relation.Int(2)}})
	if len(facts) != 2 {
		t.Fatalf("facts = %v", facts)
	}
	z1, z2 := facts[0].Tuple[1], facts[1].Tuple[1]
	if !z1.IsNull() || !z2.IsNull() {
		t.Fatalf("existential positions not nulls: %v %v", z1, z2)
	}
	if z1 == z2 {
		t.Error("distinct frontier bindings must mint distinct nulls")
	}
	if NullDepth(z1) != 1 {
		t.Errorf("fresh null depth = %d, want 1", NullDepth(z1))
	}
}

func TestMintingIsDeterministicAcrossAppliers(t *testing.T) {
	r1 := cq.MustParseRule("r1", `A.p(x, z) <- B.q(x)`)
	r2 := cq.MustParseRule("r1", `A.p(x, z) <- B.q(x)`)
	a1 := mustApplier(t, r1, Options{})
	a2 := mustApplier(t, r2, Options{})
	b := []relation.Tuple{{relation.Int(7)}}
	f1 := a1.Facts(b)
	f2 := a2.Facts(b)
	if f1[0].Tuple[1] != f2[0].Tuple[1] {
		t.Errorf("independent appliers minted different nulls: %v vs %v", f1[0].Tuple[1], f2[0].Tuple[1])
	}
	// Different rule ID ⇒ different null.
	r3 := cq.MustParseRule("r2", `A.p(x, z) <- B.q(x)`)
	a3 := mustApplier(t, r3, Options{})
	if a3.Facts(b)[0].Tuple[1] == f1[0].Tuple[1] {
		t.Error("different rules must mint different nulls")
	}
}

func TestMemoReturnsSameFacts(t *testing.T) {
	r := cq.MustParseRule("r1", `A.p(x, z) <- B.q(x)`)
	a := mustApplier(t, r, Options{})
	b := relation.Tuple{relation.Int(1)}
	f1 := a.Facts([]relation.Tuple{b})
	f2 := a.Facts([]relation.Tuple{b})
	if f1[0].Tuple[1] != f2[0].Tuple[1] {
		t.Error("re-delivery minted a new null")
	}
}

func TestSharedExistentialAcrossHeadAtoms(t *testing.T) {
	r := cq.MustParseRule("r1", `A.boss(x, z), A.emp(z) <- B.worker(x)`)
	a := mustApplier(t, r, Options{})
	facts := a.Facts([]relation.Tuple{{relation.Int(1)}})
	if len(facts) != 2 {
		t.Fatalf("facts = %v", facts)
	}
	if facts[0].Tuple[1] != facts[1].Tuple[0] {
		t.Error("existential must be shared across head atoms of one firing")
	}
}

func TestDepthGrowsThroughNullChains(t *testing.T) {
	r := cq.MustParseRule("r1", `A.p(x, z) <- B.q(x)`)
	a := mustApplier(t, r, Options{})
	// A frontier binding containing a depth-3 null yields depth-4 nulls.
	deep := relation.Null("d3~abcdef")
	facts := a.Facts([]relation.Tuple{{deep}})
	if got := NullDepth(facts[0].Tuple[1]); got != 4 {
		t.Errorf("depth = %d, want 4", got)
	}
}

func TestDepthBoundSkips(t *testing.T) {
	r := cq.MustParseRule("r1", `A.p(x, z) <- B.q(x)`)
	a := mustApplier(t, r, Options{MaxDepth: 2})
	deep := relation.Null("d2~ffff")
	facts := a.Facts([]relation.Tuple{{deep}})
	if len(facts) != 0 {
		t.Errorf("facts past depth bound = %v", facts)
	}
	if a.Skipped != 1 {
		t.Errorf("Skipped = %d", a.Skipped)
	}
	// Re-delivery of a skipped binding does not double count.
	a.Facts([]relation.Tuple{{deep}})
	if a.Skipped != 1 {
		t.Errorf("Skipped after re-delivery = %d", a.Skipped)
	}
	// Non-existential rules ignore the bound.
	rc := cq.MustParseRule("rc", `A.p(x) <- B.q(x)`)
	ac := mustApplier(t, rc, Options{MaxDepth: 1})
	if got := ac.Facts([]relation.Tuple{{deep}}); len(got) != 1 {
		t.Errorf("copy rule blocked by depth bound: %v", got)
	}
}

func TestNullDepthParsing(t *testing.T) {
	cases := map[string]int{
		"d1~ab":  1,
		"d12~ab": 12,
		"other":  0,
		"d~ab":   0,
		"dx~ab":  0,
		"":       0,
		"d-3~ab": 0,
	}
	for label, want := range cases {
		if got := NullDepth(relation.Null(label)); got != want {
			t.Errorf("NullDepth(%q) = %d, want %d", label, got, want)
		}
	}
	if NullDepth(relation.Int(5)) != 0 {
		t.Error("non-null depth must be 0")
	}
}

func TestMalformedBindingSkipped(t *testing.T) {
	r := cq.MustParseRule("r1", `A.p(x, y) <- B.q(x, y)`)
	a := mustApplier(t, r, Options{})
	facts := a.Facts([]relation.Tuple{{relation.Int(1)}}) // arity 1, frontier needs 2
	if len(facts) != 0 || a.Skipped != 1 {
		t.Errorf("malformed binding: facts=%v skipped=%d", facts, a.Skipped)
	}
}

func TestBindingsAndApply(t *testing.T) {
	in := relation.NewInstance()
	in.Insert("q", relation.Tuple{relation.Int(1), relation.Str("keep")})
	in.Insert("q", relation.Tuple{relation.Int(2), relation.Str("drop")})
	r := cq.MustParseRule("r1", `A.p(x) <- B.q(x, s), s = "keep"`)
	a := mustApplier(t, r, Options{})
	bindings, err := Bindings(r, in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(bindings) != 1 || bindings[0][0] != relation.Int(1) {
		t.Errorf("bindings = %v", bindings)
	}
	facts, err := Apply(r, in, a)
	if err != nil {
		t.Fatal(err)
	}
	if len(facts) != 1 || facts[0].String() != "p(1)" {
		t.Errorf("facts = %v", facts)
	}
}

func TestBindingsDelta(t *testing.T) {
	in := relation.NewInstance()
	in.Insert("q", relation.Tuple{relation.Int(1)})
	in.Insert("q", relation.Tuple{relation.Int(2)})
	r := cq.MustParseRule("r1", `A.p(x) <- B.q(x)`)
	delta := []relation.Tuple{{relation.Int(2)}}
	bindings, err := BindingsDelta(r, in, "q", delta, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(bindings) != 1 || bindings[0][0] != relation.Int(2) {
		t.Errorf("delta bindings = %v", bindings)
	}
}

func TestConstantInHead(t *testing.T) {
	r := cq.MustParseRule("r1", `A.p(x, "fixed") <- B.q(x)`)
	a := mustApplier(t, r, Options{})
	facts := a.Facts([]relation.Tuple{{relation.Int(1)}})
	if facts[0].Tuple[1] != relation.Str("fixed") {
		t.Errorf("facts = %v", facts)
	}
}

func TestFactString(t *testing.T) {
	f := Fact{Rel: "p", Tuple: relation.Tuple{relation.Int(1), relation.Null("d1~ab")}}
	if !strings.HasPrefix(f.String(), "p(1, ") {
		t.Errorf("String = %q", f.String())
	}
}
