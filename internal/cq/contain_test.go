package cq

import "testing"

func TestContainsBasic(t *testing.T) {
	// q2 (path of length 2 with endpoint projection) is contained in q1
	// (any edge pair): classic example where q1 has fewer constraints.
	q1 := MustParseQuery(`ans(x) :- edge(x, y)`)
	q2 := MustParseQuery(`ans(x) :- edge(x, y), edge(y, z)`)
	ok, err := Contains(q1, q2)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("edge(x,y) should contain edge(x,y),edge(y,z)")
	}
	ok, err = Contains(q2, q1)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("containment should not hold in the other direction")
	}
}

func TestContainsIdentical(t *testing.T) {
	q := MustParseQuery(`ans(x, y) :- r(x, y), s(y)`)
	ok, err := Contains(q, q)
	if err != nil || !ok {
		t.Errorf("query must contain itself: %v %v", ok, err)
	}
	eq, err := Equivalent(q, q)
	if err != nil || !eq {
		t.Errorf("query must be equivalent to itself: %v %v", eq, err)
	}
}

func TestContainsRenamedVariables(t *testing.T) {
	q1 := MustParseQuery(`ans(a, b) :- r(a, b)`)
	q2 := MustParseQuery(`ans(x, y) :- r(x, y)`)
	eq, err := Equivalent(q1, q2)
	if err != nil || !eq {
		t.Errorf("alpha-renamed queries must be equivalent: %v %v", eq, err)
	}
}

func TestContainsWithConstants(t *testing.T) {
	q1 := MustParseQuery(`ans(x) :- r(x, y)`)
	q2 := MustParseQuery(`ans(x) :- r(x, 5)`)
	ok, err := Contains(q1, q2)
	if err != nil || !ok {
		t.Errorf("generalisation must contain specialisation: %v %v", ok, err)
	}
	ok, err = Contains(q2, q1)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("specialisation must not contain generalisation")
	}
}

func TestContainsDifferentArity(t *testing.T) {
	q1 := MustParseQuery(`ans(x) :- r(x, y)`)
	q2 := MustParseQuery(`ans(x, y) :- r(x, y)`)
	ok, err := Contains(q1, q2)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("different head arities can never be contained")
	}
}

func TestContainsRedundantAtom(t *testing.T) {
	// A duplicated atom changes nothing: equivalence must hold.
	q1 := MustParseQuery(`ans(x) :- r(x, y)`)
	q2 := MustParseQuery(`ans(x) :- r(x, y), r(x, w)`)
	eq, err := Equivalent(q1, q2)
	if err != nil || !eq {
		t.Errorf("redundant-atom queries must be equivalent: %v %v", eq, err)
	}
}

func TestContainsComparisonsUnsupported(t *testing.T) {
	q1 := MustParseQuery(`ans(x) :- r(x, y), x > 1`)
	q2 := MustParseQuery(`ans(x) :- r(x, y)`)
	if _, err := Contains(q1, q2); err == nil {
		t.Error("containment with comparisons should be rejected")
	}
}

func TestDependsOn(t *testing.T) {
	// At node B: incoming rule (A imports from B), outgoing rule (B imports
	// from C). The incoming rule depends on the outgoing rule iff the
	// outgoing head writes a relation the incoming body reads.
	in := MustParseRule("in1", `A.p(x) <- B.q(x, y)`)
	out1 := MustParseRule("out1", `B.q(x, "c") <- C.r(x)`)
	out2 := MustParseRule("out2", `B.z(x) <- C.r(x)`)
	if !DependsOn(in, out1) {
		t.Error("in1 must depend on out1 (head q feeds body q)")
	}
	if DependsOn(in, out2) {
		t.Error("in1 must not depend on out2 (head z unrelated)")
	}
}

func TestBuildDependencyGraph(t *testing.T) {
	in1 := MustParseRule("in1", `A.p(x) <- B.q(x, y)`)
	in2 := MustParseRule("in2", `A.p2(x) <- B.z(x)`)
	out1 := MustParseRule("out1", `B.q(x, "c") <- C.r(x)`)
	out2 := MustParseRule("out2", `B.z(x) <- C.r(x)`)
	g := BuildDependencyGraph([]*Rule{in1, in2}, []*Rule{out1, out2})
	if got := g.ByOutgoing["out1"]; len(got) != 1 || got[0] != "in1" {
		t.Errorf("ByOutgoing[out1] = %v", got)
	}
	if got := g.ByOutgoing["out2"]; len(got) != 1 || got[0] != "in2" {
		t.Errorf("ByOutgoing[out2] = %v", got)
	}
	if got := g.ByIncoming["in1"]; len(got) != 1 || got[0] != "out1" {
		t.Errorf("ByIncoming[in1] = %v", got)
	}
}

func TestClosure(t *testing.T) {
	out1 := MustParseRule("o1", `B.q(x) <- C.r(x)`)
	out2 := MustParseRule("o2", `B.z(x) <- C.r(x)`)
	rel := Closure([]string{"q"}, []*Rule{out1, out2})
	if len(rel) != 1 || rel[0].ID != "o1" {
		t.Errorf("Closure = %v", rel)
	}
	if got := Closure([]string{"nope"}, []*Rule{out1, out2}); len(got) != 0 {
		t.Errorf("Closure(nope) = %v", got)
	}
}
