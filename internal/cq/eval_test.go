package cq

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"codb/internal/relation"
)

// refEval is a brutally simple reference evaluator: enumerate all
// assignments atom by atom in source order, no planning, no hashing.
func refEval(q *Query, src Source) []relation.Tuple {
	var results []relation.Tuple
	seen := make(map[string]bool)
	var rec func(i int, env map[string]relation.Value)
	rec = func(i int, env map[string]relation.Value) {
		if i == len(q.Body) {
			for _, c := range q.Cmps {
				l, r := c.L.Const, c.R.Const
				if c.L.IsVar() {
					l = env[c.L.Var]
				}
				if c.R.IsVar() {
					r = env[c.R.Var]
				}
				if !c.Op.Eval(l, r) {
					return
				}
			}
			t := make(relation.Tuple, len(q.Head.Terms))
			for j, term := range q.Head.Terms {
				if term.IsVar() {
					t[j] = env[term.Var]
				} else {
					t[j] = term.Const
				}
			}
			if k := t.Key(); !seen[k] {
				seen[k] = true
				results = append(results, t)
			}
			return
		}
		a := q.Body[i]
		src.Scan(a.Rel, func(tp relation.Tuple) bool {
			if len(tp) != len(a.Terms) {
				return true
			}
			next := make(map[string]relation.Value, len(env)+len(a.Terms))
			for k, v := range env {
				next[k] = v
			}
			for j, term := range a.Terms {
				if !term.IsVar() {
					if tp[j] != term.Const {
						return true
					}
					continue
				}
				if bound, ok := next[term.Var]; ok {
					if bound != tp[j] {
						return true
					}
					continue
				}
				next[term.Var] = tp[j]
			}
			rec(i+1, next)
			return true
		})
	}
	rec(0, map[string]relation.Value{})
	return results
}

func sortTuples(ts []relation.Tuple) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].Compare(ts[j]) < 0 })
}

func sameTuples(a, b []relation.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	sortTuples(a)
	sortTuples(b)
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

func testInstance() relation.Instance {
	in := relation.NewInstance()
	// emp(id, name, dept)
	in.Insert("emp", relation.Tuple{relation.Int(1), relation.Str("ann"), relation.Str("it")})
	in.Insert("emp", relation.Tuple{relation.Int(2), relation.Str("bob"), relation.Str("hr")})
	in.Insert("emp", relation.Tuple{relation.Int(3), relation.Str("cyd"), relation.Str("it")})
	// dept(name, manager)
	in.Insert("dept", relation.Tuple{relation.Str("it"), relation.Str("ann")})
	in.Insert("dept", relation.Tuple{relation.Str("hr"), relation.Str("dee")})
	return in
}

func TestEvalSingleAtom(t *testing.T) {
	q := MustParseQuery(`ans(x, n) :- emp(x, n, d)`)
	for _, s := range []Strategy{HashJoin, NestedLoop} {
		got, err := Eval(q, testInstance(), EvalOptions{Strategy: s})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 3 {
			t.Errorf("strategy %d: %d answers", s, len(got))
		}
	}
}

func TestEvalJoin(t *testing.T) {
	q := MustParseQuery(`ans(n, m) :- emp(x, n, d), dept(d, m)`)
	for _, s := range []Strategy{HashJoin, NestedLoop} {
		got, err := Eval(q, testInstance(), EvalOptions{Strategy: s})
		if err != nil {
			t.Fatal(err)
		}
		want := refEval(q, testInstance())
		if !sameTuples(got, want) {
			t.Errorf("strategy %d: got %v, want %v", s, got, want)
		}
		if len(got) != 3 {
			t.Errorf("strategy %d: %d answers, want 3", s, len(got))
		}
	}
}

func TestEvalConstantsInBody(t *testing.T) {
	q := MustParseQuery(`ans(x) :- emp(x, n, "it")`)
	got, err := Eval(q, testInstance(), EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Errorf("answers = %v", got)
	}
}

func TestEvalComparisons(t *testing.T) {
	q := MustParseQuery(`ans(x) :- emp(x, n, d), x > 1, d != "hr"`)
	got, err := Eval(q, testInstance(), EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0][0] != relation.Int(3) {
		t.Errorf("answers = %v", got)
	}
}

func TestEvalRepeatedVariable(t *testing.T) {
	in := relation.NewInstance()
	in.Insert("r", relation.Tuple{relation.Int(1), relation.Int(1)})
	in.Insert("r", relation.Tuple{relation.Int(1), relation.Int(2)})
	q := MustParseQuery(`ans(x) :- r(x, x)`)
	for _, s := range []Strategy{HashJoin, NestedLoop} {
		got, err := Eval(q, in, EvalOptions{Strategy: s})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 || got[0][0] != relation.Int(1) {
			t.Errorf("strategy %d: answers = %v", s, got)
		}
	}
}

func TestEvalSelfJoin(t *testing.T) {
	in := relation.NewInstance()
	in.Insert("edge", relation.Tuple{relation.Int(1), relation.Int(2)})
	in.Insert("edge", relation.Tuple{relation.Int(2), relation.Int(3)})
	in.Insert("edge", relation.Tuple{relation.Int(3), relation.Int(1)})
	q := MustParseQuery(`ans(x, z) :- edge(x, y), edge(y, z)`)
	for _, s := range []Strategy{HashJoin, NestedLoop} {
		got, err := Eval(q, in, EvalOptions{Strategy: s})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 3 {
			t.Errorf("strategy %d: answers = %v", s, got)
		}
	}
}

func TestEvalCartesianProduct(t *testing.T) {
	in := relation.NewInstance()
	in.Insert("a", relation.Tuple{relation.Int(1)})
	in.Insert("a", relation.Tuple{relation.Int(2)})
	in.Insert("b", relation.Tuple{relation.Str("x")})
	in.Insert("b", relation.Tuple{relation.Str("y")})
	q := MustParseQuery(`ans(x, y) :- a(x), b(y)`)
	for _, s := range []Strategy{HashJoin, NestedLoop} {
		got, err := Eval(q, in, EvalOptions{Strategy: s})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 4 {
			t.Errorf("strategy %d: answers = %v", s, got)
		}
	}
}

func TestEvalEmptyRelation(t *testing.T) {
	q := MustParseQuery(`ans(x) :- ghost(x)`)
	got, err := Eval(q, testInstance(), EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("answers = %v", got)
	}
}

func TestEvalHeadConstant(t *testing.T) {
	q := MustParseQuery(`ans(x, "tag") :- emp(x, n, d), x = 1`)
	got, err := Eval(q, testInstance(), EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0][1] != relation.Str("tag") {
		t.Errorf("answers = %v", got)
	}
}

func TestEvalNullSemantics(t *testing.T) {
	in := relation.NewInstance()
	in.Insert("r", relation.Tuple{relation.Null("u1"), relation.Int(1)})
	in.Insert("r", relation.Tuple{relation.Null("u2"), relation.Int(2)})
	in.Insert("s", relation.Tuple{relation.Null("u1")})

	// Nulls join by label: only u1 matches.
	q := MustParseQuery(`ans(y) :- r(x, y), s(x)`)
	got, _ := Eval(q, in, EvalOptions{})
	if len(got) != 1 || got[0][0] != relation.Int(1) {
		t.Errorf("null join answers = %v", got)
	}

	// Order comparisons over nulls are false.
	q2 := MustParseQuery(`ans(y) :- r(x, y), x > 0`)
	got2, _ := Eval(q2, in, EvalOptions{})
	if len(got2) != 0 {
		t.Errorf("null comparison answers = %v", got2)
	}

	// FilterCertain drops null-carrying answers.
	q3 := MustParseQuery(`ans(x, y) :- r(x, y)`)
	got3, _ := Eval(q3, in, EvalOptions{})
	if len(got3) != 2 {
		t.Fatalf("all answers = %v", got3)
	}
	if cert := FilterCertain(got3); len(cert) != 0 {
		t.Errorf("certain answers = %v", cert)
	}
}

func TestEvalAllConstantComparison(t *testing.T) {
	in := relation.NewInstance()
	in.Insert("r", relation.Tuple{relation.Int(1)})
	for _, s := range []Strategy{HashJoin, NestedLoop} {
		got, err := Eval(MustParseQuery(`ans(x) :- r(x), 2 < 1`), in, EvalOptions{Strategy: s})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 0 {
			t.Errorf("strategy %d: false constant comparison did not filter: %v", s, got)
		}
		got, err = Eval(MustParseQuery(`ans(x) :- r(x), 1 < 2`), in, EvalOptions{Strategy: s})
		if err != nil || len(got) != 1 {
			t.Errorf("strategy %d: true constant comparison filtered: %v %v", s, got, err)
		}
	}
}

func TestEvalBindings(t *testing.T) {
	q := MustParseQuery(`ans(x) :- emp(x, n, d), dept(d, m)`)
	got, err := EvalBindings(q.Body, q.Cmps, []string{"n", "m"}, testInstance(), EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Errorf("bindings = %v", got)
	}
	if _, err := EvalBindings(q.Body, q.Cmps, []string{"zz"}, testInstance(), EvalOptions{}); err == nil {
		t.Error("unbound output variable accepted")
	}
}

func TestEvalDeltaSemiNaive(t *testing.T) {
	in := testInstance()
	body := MustParseQuery(`ans(n, m) :- emp(x, n, d), dept(d, m)`).Body

	// Delta on emp: a new employee in dept "hr".
	delta := []relation.Tuple{{relation.Int(9), relation.Str("zoe"), relation.Str("hr")}}
	in.Insert("emp", delta[0]) // delta already applied to the store
	got, err := EvalDelta(body, nil, []string{"n", "m"}, in, "emp", delta, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0][0] != relation.Str("zoe") || got[0][1] != relation.Str("dee") {
		t.Errorf("delta results = %v", got)
	}

	// Delta on a relation not in the body: no results.
	got, err = EvalDelta(body, nil, []string{"n"}, in, "ghost", delta, EvalOptions{})
	if err != nil || len(got) != 0 {
		t.Errorf("ghost delta = %v, %v", got, err)
	}
}

func TestEvalDeltaSelfJoinBothOccurrences(t *testing.T) {
	in := relation.NewInstance()
	in.Insert("edge", relation.Tuple{relation.Int(1), relation.Int(2)})
	in.Insert("edge", relation.Tuple{relation.Int(2), relation.Int(3)})
	body := MustParseQuery(`ans(x, z) :- edge(x, y), edge(y, z)`).Body
	// New edge 3->1 creates paths via BOTH positions: (2,1) using it as the
	// second atom and (3,2) using it as the first.
	delta := []relation.Tuple{{relation.Int(3), relation.Int(1)}}
	in.Insert("edge", delta[0])
	got, err := EvalDelta(body, nil, []string{"x", "z"}, in, "edge", delta, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := []relation.Tuple{
		{relation.Int(2), relation.Int(1)},
		{relation.Int(3), relation.Int(2)},
	}
	if !sameTuples(got, want) {
		t.Errorf("delta results = %v, want %v", got, want)
	}
}

// Property: hash join, nested loop and the reference evaluator agree on
// random queries over random instances.
func TestQuickStrategiesAgree(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := relation.NewInstance()
		// Three relations with arities 1..3 over a small int domain.
		arity := map[string]int{"p": 1, "q": 2, "r": 3}
		for rel, ar := range arity {
			n := r.Intn(12)
			for i := 0; i < n; i++ {
				t := make(relation.Tuple, ar)
				for j := range t {
					t[j] = relation.Int(r.Intn(4))
				}
				in.Insert(rel, t)
			}
		}
		q := randomQuery(r)
		hash, err1 := Eval(q, in, EvalOptions{Strategy: HashJoin})
		nested, err2 := Eval(q, in, EvalOptions{Strategy: NestedLoop})
		if err1 != nil || err2 != nil {
			t.Logf("query %s: %v %v", q, err1, err2)
			return false
		}
		ref := refEval(q, in)
		if !sameTuples(hash, ref) || !sameTuples(nested, ref) {
			t.Logf("query %s: hash=%v nested=%v ref=%v", q, hash, nested, ref)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// randomQuery builds a random safe query over relations p/1, q/2, r/3 with
// variables drawn from a small pool, plus occasional constants and
// comparisons.
func randomQuery(rnd *rand.Rand) *Query {
	pool := []string{"a", "b", "c", "d"}
	rels := []struct {
		name  string
		arity int
	}{{"p", 1}, {"q", 2}, {"r", 3}}
	nAtoms := rnd.Intn(3) + 1
	var body []Atom
	for i := 0; i < nAtoms; i++ {
		rel := rels[rnd.Intn(len(rels))]
		terms := make([]Term, rel.arity)
		for j := range terms {
			if rnd.Intn(5) == 0 {
				terms[j] = C(relation.Int(rnd.Intn(4)))
			} else {
				terms[j] = V(pool[rnd.Intn(len(pool))])
			}
		}
		body = append(body, Atom{Rel: rel.name, Terms: terms})
	}
	var bodyVars []string
	for _, a := range body {
		bodyVars = a.Vars(bodyVars)
	}
	var head Atom
	head.Rel = "ans"
	if len(bodyVars) == 0 {
		// All-constant body; make a constant head.
		head.Terms = []Term{C(relation.Int(0))}
	} else {
		n := rnd.Intn(len(bodyVars)) + 1
		for i := 0; i < n; i++ {
			head.Terms = append(head.Terms, V(bodyVars[rnd.Intn(len(bodyVars))]))
		}
	}
	var cmps []Comparison
	if len(bodyVars) > 0 && rnd.Intn(2) == 0 {
		ops := []CmpOp{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}
		cmps = append(cmps, Comparison{
			Op: ops[rnd.Intn(len(ops))],
			L:  V(bodyVars[rnd.Intn(len(bodyVars))]),
			R:  C(relation.Int(rnd.Intn(4))),
		})
	}
	return &Query{Head: head, Body: body, Cmps: cmps}
}

// eqSpy wraps an instance and records ScanEq pushdown calls.
type eqSpy struct {
	relation.Instance
	calls int
}

func (s *eqSpy) ScanEq(rel string, pos int, v relation.Value, fn func(relation.Tuple) bool) {
	s.calls++
	s.Instance.Scan(rel, func(t relation.Tuple) bool {
		if len(t) > pos && t[pos] == v {
			return fn(t)
		}
		return true
	})
}

func TestEvalConstantPushdown(t *testing.T) {
	spy := &eqSpy{Instance: testInstance()}
	q := MustParseQuery(`ans(x) :- emp(x, n, "it")`)
	got, err := Eval(q, spy, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Errorf("answers = %v", got)
	}
	if spy.calls == 0 {
		t.Error("constant was not pushed down to the EqScanner")
	}
	// Correctness must match the plain-source evaluation.
	plain, _ := Eval(q, testInstance(), EvalOptions{})
	if !sameTuples(got, plain) {
		t.Errorf("pushdown changed answers: %v vs %v", got, plain)
	}
	// Atoms without constants must not use the pushdown path.
	spy2 := &eqSpy{Instance: testInstance()}
	if _, err := Eval(MustParseQuery(`ans(x) :- emp(x, n, d)`), spy2, EvalOptions{}); err != nil {
		t.Fatal(err)
	}
	if spy2.calls != 0 {
		t.Errorf("pushdown used without constants (%d calls)", spy2.calls)
	}
}

func BenchmarkEvalHashJoin(b *testing.B)   { benchEval(b, HashJoin) }
func BenchmarkEvalNestedLoop(b *testing.B) { benchEval(b, NestedLoop) }

func benchEval(b *testing.B, s Strategy) {
	in := relation.NewInstance()
	for i := 0; i < 1000; i++ {
		in.Insert("emp", relation.Tuple{relation.Int(i), relation.Str(fmt.Sprintf("n%d", i%100)), relation.Int(i % 10)})
		if i < 10 {
			in.Insert("dept", relation.Tuple{relation.Int(i), relation.Str(fmt.Sprintf("d%d", i))})
		}
	}
	q := MustParseQuery(`ans(n, m) :- emp(x, n, d), dept(d, m)`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Eval(q, in, EvalOptions{Strategy: s}); err != nil {
			b.Fatal(err)
		}
	}
}
