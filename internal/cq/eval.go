package cq

import (
	"fmt"
	"sort"
	"sync"

	"codb/internal/relation"
)

// Source is any provider of relation scans: the storage engine, a
// relation.Instance, or a peer's overlay view all satisfy it.
type Source interface {
	Scan(rel string, fn func(relation.Tuple) bool)
}

// EqScanner is optionally implemented by sources that can enumerate the
// tuples with a fixed value at one position more cheaply than a full scan
// (the storage engine's secondary indexes do). The evaluator pushes the
// first constant of an atom down to it when available.
type EqScanner interface {
	ScanEq(rel string, pos int, v relation.Value, fn func(relation.Tuple) bool)
}

// ShardedSource is optionally implemented by sources whose relations are
// hash-partitioned into independently scannable shards (the storage
// engine's snapshots are). With EvalOptions.Parallelism > 1 the hash-join
// build phase fans its scan out across shards — safe only because such
// sources are immutable views, so per-shard scans at different times still
// observe one consistent state. Per-shard iteration must be in key order;
// the union of all shards must equal Scan's tuples.
type ShardedSource interface {
	ShardCount(rel string) int
	ScanShard(rel string, shard int, fn func(relation.Tuple) bool)
}

// Strategy selects the join algorithm.
type Strategy uint8

const (
	// HashJoin builds hash tables on shared variables (default).
	HashJoin Strategy = iota
	// NestedLoop re-scans each atom per partial binding; kept for the A3
	// ablation and as a correctness reference.
	NestedLoop
)

// EvalOptions tunes evaluation.
type EvalOptions struct {
	Strategy Strategy
	// Parallelism caps the worker fan-out of the hash-join probe phase:
	// once the partial-binding set is large enough (it originates from the
	// partitions of the outermost atom's scan), each join stage probes its
	// partitions on up to this many goroutines. 0 or 1 evaluates serially;
	// the nested-loop strategy (a correctness reference) is always serial.
	// Results are identical to serial evaluation, in the same order.
	Parallelism int
}

// parallelMinBindings is the binding-set size below which a probe stays
// serial: fan-out overhead (goroutines, per-worker slices) only pays off
// against relations large enough to matter.
const parallelMinBindings = 256

// Eval evaluates a conjunctive query over src and returns the deduplicated
// head tuples.
func Eval(q *Query, src Source, opts EvalOptions) ([]relation.Tuple, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return evalProject(q.Head.Terms, q.Body, q.Cmps, src, nil, nil, opts)
}

// EvalBindings evaluates the body and projects the bindings onto outVars.
// Every outVar must be bound by the body.
func EvalBindings(body []Atom, cmps []Comparison, outVars []string, src Source, opts EvalOptions) ([]relation.Tuple, error) {
	terms := make([]Term, len(outVars))
	for i, v := range outVars {
		terms[i] = V(v)
	}
	var bodyVars []string
	for _, a := range body {
		bodyVars = a.Vars(bodyVars)
	}
	for _, v := range outVars {
		if !contains(bodyVars, v) {
			return nil, fmt.Errorf("cq: output variable %s not bound by the body", v)
		}
	}
	return evalProject(terms, body, cmps, src, nil, nil, opts)
}

// EvalDelta performs the semi-naive step: it evaluates the body with one
// occurrence of deltaRel at a time restricted to the delta tuples (all other
// atoms over the full source), unioning the projections. Sound and complete
// for "results that use at least one delta tuple".
func EvalDelta(body []Atom, cmps []Comparison, outVars []string, src Source, deltaRel string, delta []relation.Tuple, opts EvalOptions) ([]relation.Tuple, error) {
	terms := make([]Term, len(outVars))
	for i, v := range outVars {
		terms[i] = V(v)
	}
	seen := make(map[string]bool)
	var out []relation.Tuple
	for i := range body {
		if body[i].Rel != deltaRel {
			continue
		}
		idx := i
		res, err := evalProject(terms, body, cmps, src, &idx, delta, opts)
		if err != nil {
			return nil, err
		}
		for _, t := range res {
			k := t.Key()
			if !seen[k] {
				seen[k] = true
				out = append(out, t)
			}
		}
	}
	return out, nil
}

// FilterCertain drops tuples containing marked nulls: the certain-answer
// semantics for unions of conjunctive queries over naive tables.
func FilterCertain(ts []relation.Tuple) []relation.Tuple {
	out := ts[:0:0]
	for _, t := range ts {
		if !t.HasNull() {
			out = append(out, t)
		}
	}
	return out
}

// binding is a partial assignment: values parallel to the compiled variable
// list, with a bound mask.
type binding struct {
	vals  []relation.Value
	bound []bool
}

func (b *binding) clone() *binding {
	nb := &binding{vals: make([]relation.Value, len(b.vals)), bound: make([]bool, len(b.bound))}
	copy(nb.vals, b.vals)
	copy(nb.bound, b.bound)
	return nb
}

// compiled plan over one body.
type plan struct {
	vars   []string
	varIdx map[string]int
	atoms  []patom
	cmps   []pcmp
}

type patom struct {
	rel    string
	varPos []int            // per term: variable index, or -1 for constant
	consts []relation.Value // per term: constant when varPos == -1
	delta  bool             // scan the delta slice instead of src
}

type pcmp struct {
	op           CmpOp
	lVar, rVar   int // variable index or -1
	lConst       relation.Value
	rConst       relation.Value
	lastVarAtoms int // applicable once atoms[0:lastVarAtoms] are joined
}

// compile builds the plan: atom order chosen greedily (delta atom first,
// then most-constants, then max shared bound variables).
func compile(body []Atom, cmps []Comparison, deltaAtom *int) *plan {
	p := &plan{varIdx: make(map[string]int)}
	intern := func(v string) int {
		if i, ok := p.varIdx[v]; ok {
			return i
		}
		i := len(p.vars)
		p.vars = append(p.vars, v)
		p.varIdx[v] = i
		return i
	}

	// Greedy ordering over original indices.
	remaining := make([]int, len(body))
	for i := range remaining {
		remaining[i] = i
	}
	atomVars := make([][]string, len(body))
	for i, a := range body {
		atomVars[i] = a.Vars(nil)
	}
	boundVars := make(map[string]bool)
	var order []int
	for len(remaining) > 0 {
		best, bestScore := -1, -1<<30
		for ri, ai := range remaining {
			score := 0
			if deltaAtom != nil && ai == *deltaAtom {
				score += 1 << 20 // delta atom leads
			}
			for _, t := range body[ai].Terms {
				if !t.IsVar() {
					score += 4
				}
			}
			shared := 0
			for _, v := range atomVars[ai] {
				if boundVars[v] {
					shared++
				}
			}
			if len(order) > 0 && shared == 0 && score < 1<<20 {
				score -= 1 << 10 // discourage cartesian products
			}
			score += shared * 16
			if score > bestScore {
				bestScore, best = score, ri
			}
		}
		ai := remaining[best]
		remaining = append(remaining[:best], remaining[best+1:]...)
		order = append(order, ai)
		for _, v := range atomVars[ai] {
			boundVars[v] = true
		}
	}

	for _, ai := range order {
		a := body[ai]
		pa := patom{rel: a.Rel, varPos: make([]int, len(a.Terms)), consts: make([]relation.Value, len(a.Terms))}
		for ti, t := range a.Terms {
			if t.IsVar() {
				pa.varPos[ti] = intern(t.Var)
			} else {
				pa.varPos[ti] = -1
				pa.consts[ti] = t.Const
			}
		}
		if deltaAtom != nil && ai == *deltaAtom {
			pa.delta = true
		}
		p.atoms = append(p.atoms, pa)
	}

	// Compile comparisons and find the earliest prefix after which each is
	// fully bound.
	for _, c := range cmps {
		pc := pcmp{op: c.Op, lVar: -1, rVar: -1}
		if c.L.IsVar() {
			pc.lVar = intern(c.L.Var)
		} else {
			pc.lConst = c.L.Const
		}
		if c.R.IsVar() {
			pc.rVar = intern(c.R.Var)
		} else {
			pc.rConst = c.R.Const
		}
		need := make(map[int]bool)
		if pc.lVar >= 0 {
			need[pc.lVar] = true
		}
		if pc.rVar >= 0 {
			need[pc.rVar] = true
		}
		bound := make(map[int]bool)
		pc.lastVarAtoms = len(p.atoms) // default: apply at the very end
		for i, pa := range p.atoms {
			for _, vp := range pa.varPos {
				if vp >= 0 {
					bound[vp] = true
				}
			}
			all := true
			for v := range need {
				if !bound[v] {
					all = false
					break
				}
			}
			if all {
				pc.lastVarAtoms = i + 1
				break
			}
		}
		if len(need) == 0 {
			// All-constant comparison: check after the first atom (there
			// is always at least one; empty bodies are rejected earlier).
			pc.lastVarAtoms = 1
		}
		p.cmps = append(p.cmps, pc)
	}
	return p
}

func (c *pcmp) eval(b *binding) bool {
	l, r := c.lConst, c.rConst
	if c.lVar >= 0 {
		l = b.vals[c.lVar]
	}
	if c.rVar >= 0 {
		r = b.vals[c.rVar]
	}
	return c.op.Eval(l, r)
}

// unify extends b with tuple t against atom pa; returns false (leaving b
// possibly dirty — caller clones) on mismatch.
func unify(pa *patom, t relation.Tuple, b *binding) bool {
	if len(t) != len(pa.varPos) {
		return false
	}
	for i, vp := range pa.varPos {
		if vp < 0 {
			if t[i] != pa.consts[i] {
				return false
			}
			continue
		}
		if b.bound[vp] {
			if b.vals[vp] != t[i] {
				return false
			}
			continue
		}
		b.bound[vp] = true
		b.vals[vp] = t[i]
	}
	return true
}

// evalProject compiles the body, evaluates it, and projects the bindings
// through the given head terms (variables or constants), deduplicating the
// result. deltaAtom (an index into body) and delta restrict one atom
// occurrence to the delta tuples.
func evalProject(terms []Term, body []Atom, cmps []Comparison, src Source, deltaAtom *int, delta []relation.Tuple, opts EvalOptions) ([]relation.Tuple, error) {
	if len(body) == 0 {
		return nil, fmt.Errorf("cq: empty body")
	}
	p := compile(body, cmps, deltaAtom)
	var bindings []*binding
	switch opts.Strategy {
	case NestedLoop:
		bindings = p.evalNested(src, delta)
	default:
		bindings = p.evalHash(src, delta, opts.Parallelism)
	}
	seen := make(map[string]bool, len(bindings))
	var out []relation.Tuple
	for _, b := range bindings {
		t := make(relation.Tuple, len(terms))
		for i, term := range terms {
			if !term.IsVar() {
				t[i] = term.Const
				continue
			}
			vi, ok := p.varIdx[term.Var]
			if !ok || !b.bound[vi] {
				return nil, fmt.Errorf("cq: projection variable %s not bound", term.Var)
			}
			t[i] = b.vals[vi]
		}
		k := t.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, t)
		}
	}
	return out, nil
}

func (p *plan) scanAtom(src Source, pa *patom, delta []relation.Tuple, fn func(relation.Tuple) bool) {
	if pa.delta {
		for _, t := range delta {
			if !fn(t) {
				return
			}
		}
		return
	}
	// Constant pushdown: let an index-capable source enumerate only the
	// tuples matching the atom's first constant. unify re-checks every
	// constant, so this is purely an access-path optimisation.
	if eq, ok := src.(EqScanner); ok {
		for ti, vp := range pa.varPos {
			if vp < 0 {
				eq.ScanEq(pa.rel, ti, pa.consts[ti], fn)
				return
			}
		}
	}
	src.Scan(pa.rel, fn)
}

// evalNested is the nested-loop strategy: depth-first over atoms.
func (p *plan) evalNested(src Source, delta []relation.Tuple) []*binding {
	var out []*binding
	var rec func(i int, b *binding)
	rec = func(i int, b *binding) {
		if i == len(p.atoms) {
			out = append(out, b.clone())
			return
		}
		pa := &p.atoms[i]
		p.scanAtom(src, pa, delta, func(t relation.Tuple) bool {
			nb := b.clone()
			if !unify(pa, t, nb) {
				return true
			}
			for ci := range p.cmps {
				if p.cmps[ci].lastVarAtoms == i+1 && !p.cmps[ci].eval(nb) {
					return true
				}
			}
			rec(i+1, nb)
			return true
		})
	}
	rec(0, &binding{vals: make([]relation.Value, len(p.vars)), bound: make([]bool, len(p.vars))})
	return out
}

// evalHash is the hash-join strategy: a pipeline of partial-binding sets,
// each atom joined via a hash table keyed on the shared bound variables.
// With parallelism > 1, once the binding set is large each stage's probe
// fans out over partitions of it (the build phase — one scan per atom —
// stays serial, so sources only ever see sequential access).
func (p *plan) evalHash(src Source, delta []relation.Tuple, parallelism int) []*binding {
	cur := []*binding{{vals: make([]relation.Value, len(p.vars)), bound: make([]bool, len(p.vars))}}
	boundSoFar := make([]bool, len(p.vars))
	for i := range p.atoms {
		pa := &p.atoms[i]
		// Join key: positions of atom terms whose variable is already bound.
		var keyTermIdx []int
		for ti, vp := range pa.varPos {
			if vp >= 0 && boundSoFar[vp] {
				keyTermIdx = append(keyTermIdx, ti)
			}
		}
		buckets := p.buildBuckets(src, pa, delta, keyTermIdx, parallelism)
		cur = p.probe(cur, pa, i, keyTermIdx, buckets, parallelism)
		for _, vp := range pa.varPos {
			if vp >= 0 {
				boundSoFar[vp] = true
			}
		}
		if len(cur) == 0 {
			return nil
		}
	}
	return cur
}

// buildBuckets is the hash-join build phase for one atom: bucket the
// atom's tuples by join key (also filtering constants; intra-atom repeated
// variables are re-checked via unify at probe time). When the source
// exposes hash-sharded relations (ShardedSource — storage snapshots do)
// and parallelism allows, the scan fans out across shards on a worker
// pool; each bucket is then re-sorted into tuple order, so the bucket
// contents are bit-identical to the serial scan's (tuple keys are unique
// and serial scans deliver global key order).
func (p *plan) buildBuckets(src Source, pa *patom, delta []relation.Tuple, keyTermIdx []int, parallelism int) map[string][]relation.Tuple {
	collect := func(buckets map[string][]relation.Tuple) func(relation.Tuple) bool {
		return func(t relation.Tuple) bool {
			if len(t) != len(pa.varPos) {
				return true
			}
			for ti, vp := range pa.varPos {
				if vp < 0 && t[ti] != pa.consts[ti] {
					return true
				}
			}
			var kb []byte
			for _, ti := range keyTermIdx {
				kb = relation.EncodeValue(kb, t[ti])
			}
			k := string(kb)
			buckets[k] = append(buckets[k], t.Clone())
			return true
		}
	}
	if ss, ok := shardableScan(src, pa, delta, parallelism); ok {
		n := ss.ShardCount(pa.rel)
		workers := parallelism
		if workers > n {
			workers = n
		}
		parts := make([]map[string][]relation.Tuple, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				m := make(map[string][]relation.Tuple)
				fn := collect(m)
				for sh := w; sh < n; sh += workers {
					ss.ScanShard(pa.rel, sh, fn)
				}
				parts[w] = m
			}(w)
		}
		wg.Wait()
		buckets := parts[0]
		for _, m := range parts[1:] {
			for k, ts := range m {
				buckets[k] = append(buckets[k], ts...)
			}
		}
		for _, ts := range buckets {
			if len(ts) > 1 {
				sort.Slice(ts, func(i, j int) bool { return ts[i].Compare(ts[j]) < 0 })
			}
		}
		return buckets
	}
	buckets := make(map[string][]relation.Tuple)
	p.scanAtom(src, pa, delta, collect(buckets))
	return buckets
}

// shardableScan reports whether the atom's build scan may fan out per
// shard: a non-delta atom, no constant-pushdown access path in play
// (scanAtom would prefer ScanEq), a sharded source, more than one shard,
// and parallelism enabled.
func shardableScan(src Source, pa *patom, delta []relation.Tuple, parallelism int) (ShardedSource, bool) {
	if pa.delta || parallelism <= 1 {
		return nil, false
	}
	if _, eq := src.(EqScanner); eq {
		for _, vp := range pa.varPos {
			if vp < 0 {
				return nil, false // constant pushdown wins
			}
		}
	}
	ss, ok := src.(ShardedSource)
	if !ok || ss.ShardCount(pa.rel) <= 1 {
		return nil, false
	}
	return ss, true
}

// probe extends every partial binding with the matching tuples of one atom.
// Large binding sets are probed by a worker pool over contiguous partitions;
// buckets and the plan are read-only during the probe, each worker appends
// to its own output, and outputs concatenate in partition order, so the
// result is bit-identical to the serial probe.
func (p *plan) probe(cur []*binding, pa *patom, atomIdx int, keyTermIdx []int, buckets map[string][]relation.Tuple, parallelism int) []*binding {
	workers := parallelism
	if limit := len(cur) / parallelMinBindings; workers > limit {
		workers = limit
	}
	if workers <= 1 {
		return p.probeRange(cur, pa, atomIdx, keyTermIdx, buckets)
	}
	parts := make([][]*binding, workers)
	var wg sync.WaitGroup
	chunk := (len(cur) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(cur) {
			hi = len(cur)
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			parts[w] = p.probeRange(cur[lo:hi], pa, atomIdx, keyTermIdx, buckets)
		}(w, lo, hi)
	}
	wg.Wait()
	total := 0
	for _, part := range parts {
		total += len(part)
	}
	next := make([]*binding, 0, total)
	for _, part := range parts {
		next = append(next, part...)
	}
	return next
}

// probeRange is the serial probe over one partition of the binding set.
func (p *plan) probeRange(cur []*binding, pa *patom, atomIdx int, keyTermIdx []int, buckets map[string][]relation.Tuple) []*binding {
	var next []*binding
	for _, b := range cur {
		var kb []byte
		for _, ti := range keyTermIdx {
			kb = relation.EncodeValue(kb, b.vals[pa.varPos[ti]])
		}
		for _, t := range buckets[string(kb)] {
			nb := b.clone()
			if !unify(pa, t, nb) {
				continue
			}
			ok := true
			for ci := range p.cmps {
				if p.cmps[ci].lastVarAtoms == atomIdx+1 && !p.cmps[ci].eval(nb) {
					ok = false
					break
				}
			}
			if ok {
				next = append(next, nb)
			}
		}
	}
	return next
}
