package cq

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"codb/internal/relation"
)

// Concrete syntax:
//
//	query:  ans(x, y) :- emp(x, d), dept(d, y), x > 10, y != "hr"
//	rule:   N1.person(x, n), N1.addr(x, a) <- N2.emp(x, n), N2.loc(x, c), c = "it"
//
// Identifiers are variables inside atoms and relation names in atom
// position; "_" is an anonymous variable (each occurrence distinct);
// constants are integers, floats, "strings", true and false. '#' starts a
// comment that runs to the end of the line.

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokInt
	tokFloat
	tokString
	tokLParen
	tokRParen
	tokComma
	tokDot
	tokArrowCQ   // :-
	tokArrowRule // <-
	tokOp        // comparison operator
)

type token struct {
	kind tokKind
	text string
	op   CmpOp
	pos  int
}

type lexer struct {
	src string
	pos int
}

func (l *lexer) errf(pos int, format string, args ...any) error {
	return fmt.Errorf("cq: parse error at column %d: %s", pos+1, fmt.Sprintf(format, args...))
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '#':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			goto scan
		}
	}
	return token{kind: tokEOF, pos: l.pos}, nil

scan:
	start := l.pos
	c := l.src[l.pos]
	switch {
	case c == '(':
		l.pos++
		return token{kind: tokLParen, pos: start}, nil
	case c == ')':
		l.pos++
		return token{kind: tokRParen, pos: start}, nil
	case c == ',':
		l.pos++
		return token{kind: tokComma, pos: start}, nil
	case c == '.':
		l.pos++
		return token{kind: tokDot, pos: start}, nil
	case c == ':':
		if strings.HasPrefix(l.src[l.pos:], ":-") {
			l.pos += 2
			return token{kind: tokArrowCQ, pos: start}, nil
		}
		return token{}, l.errf(start, "expected ':-'")
	case c == '<':
		if strings.HasPrefix(l.src[l.pos:], "<-") {
			l.pos += 2
			return token{kind: tokArrowRule, pos: start}, nil
		}
		if strings.HasPrefix(l.src[l.pos:], "<=") {
			l.pos += 2
			return token{kind: tokOp, op: OpLe, pos: start}, nil
		}
		l.pos++
		return token{kind: tokOp, op: OpLt, pos: start}, nil
	case c == '>':
		if strings.HasPrefix(l.src[l.pos:], ">=") {
			l.pos += 2
			return token{kind: tokOp, op: OpGe, pos: start}, nil
		}
		l.pos++
		return token{kind: tokOp, op: OpGt, pos: start}, nil
	case c == '=':
		l.pos++
		return token{kind: tokOp, op: OpEq, pos: start}, nil
	case c == '!':
		if strings.HasPrefix(l.src[l.pos:], "!=") {
			l.pos += 2
			return token{kind: tokOp, op: OpNe, pos: start}, nil
		}
		return token{}, l.errf(start, "expected '!='")
	case c == '"':
		// Scan to the closing unescaped quote, then let strconv.Unquote
		// interpret the literal: string values render with strconv.Quote
		// (relation.Value.String), so the lexer must accept exactly the Go
		// escape vocabulary for rendered terms to round-trip.
		l.pos++
		for l.pos < len(l.src) {
			ch := l.src[l.pos]
			if ch == '\\' && l.pos+1 < len(l.src) {
				l.pos += 2
				continue
			}
			if ch == '"' {
				l.pos++
				text, err := strconv.Unquote(l.src[start:l.pos])
				if err != nil {
					return token{}, l.errf(start, "bad string literal: %v", err)
				}
				return token{kind: tokString, text: text, pos: start}, nil
			}
			if ch == '\n' {
				break // strconv.Unquote would reject it anyway; report cleanly
			}
			l.pos++
		}
		return token{}, l.errf(start, "unterminated string")
	case c == '-' || (c >= '0' && c <= '9'):
		l.pos++
		isFloat := false
		for l.pos < len(l.src) {
			ch := l.src[l.pos]
			if ch >= '0' && ch <= '9' {
				l.pos++
				continue
			}
			if ch == '.' && !isFloat && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' {
				isFloat = true
				l.pos++
				continue
			}
			// Exponent: floats render in Go's 'g' format (e.g. 1e+06), so
			// the lexer accepts [eE][+-]?digits after the mantissa.
			if (ch == 'e' || ch == 'E') && l.pos > start && l.src[l.pos-1] >= '0' && l.src[l.pos-1] <= '9' {
				rest := l.src[l.pos+1:]
				if len(rest) > 0 && (rest[0] == '+' || rest[0] == '-') {
					rest = rest[1:]
				}
				if len(rest) > 0 && rest[0] >= '0' && rest[0] <= '9' {
					isFloat = true
					l.pos += len(l.src[l.pos:]) - len(rest) // past e and sign
					for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
						l.pos++
					}
				}
			}
			break
		}
		text := l.src[start:l.pos]
		if text == "-" {
			return token{}, l.errf(start, "dangling '-'")
		}
		if isFloat {
			return token{kind: tokFloat, text: text, pos: start}, nil
		}
		return token{kind: tokInt, text: text, pos: start}, nil
	case isIdentStart(c):
		l.pos++
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], pos: start}, nil
	default:
		return token{}, l.errf(start, "unexpected character %q", c)
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

type parser struct {
	lex   lexer
	tok   token
	anonN int
}

func newParser(src string) (*parser, error) {
	p := &parser{lex: lexer{src: src}}
	return p, p.advance()
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) expect(k tokKind, what string) (token, error) {
	if p.tok.kind != k {
		return token{}, p.lex.errf(p.tok.pos, "expected %s", what)
	}
	t := p.tok
	return t, p.advance()
}

// term parses a variable or constant.
func (p *parser) term() (Term, error) {
	switch p.tok.kind {
	case tokIdent:
		name := p.tok.text
		if err := p.advance(); err != nil {
			return Term{}, err
		}
		switch name {
		case "true":
			return C(relation.Bool(true)), nil
		case "false":
			return C(relation.Bool(false)), nil
		case "_":
			p.anonN++
			return V(fmt.Sprintf("_anon%d", p.anonN)), nil
		}
		return V(name), nil
	case tokInt:
		n, err := strconv.ParseInt(p.tok.text, 10, 64)
		if err != nil {
			return Term{}, p.lex.errf(p.tok.pos, "bad integer %q", p.tok.text)
		}
		return C(relation.Int64(n)), p.advance()
	case tokFloat:
		f, err := strconv.ParseFloat(p.tok.text, 64)
		if err != nil {
			return Term{}, p.lex.errf(p.tok.pos, "bad float %q", p.tok.text)
		}
		return C(relation.Float(f)), p.advance()
	case tokString:
		s := p.tok.text
		return C(relation.Str(s)), p.advance()
	default:
		return Term{}, p.lex.errf(p.tok.pos, "expected a term")
	}
}

// qualifiedAtom parses [node '.'] rel '(' terms ')' and returns the node
// qualifier ("" if absent).
func (p *parser) qualifiedAtom() (node string, a Atom, err error) {
	name, err := p.expect(tokIdent, "a relation name")
	if err != nil {
		return "", Atom{}, err
	}
	rel := name.text
	if p.tok.kind == tokDot {
		if err := p.advance(); err != nil {
			return "", Atom{}, err
		}
		relTok, err := p.expect(tokIdent, "a relation name after '.'")
		if err != nil {
			return "", Atom{}, err
		}
		node, rel = name.text, relTok.text
	}
	if _, err := p.expect(tokLParen, "'('"); err != nil {
		return "", Atom{}, err
	}
	var terms []Term
	if p.tok.kind != tokRParen {
		for {
			t, err := p.term()
			if err != nil {
				return "", Atom{}, err
			}
			terms = append(terms, t)
			if p.tok.kind != tokComma {
				break
			}
			if err := p.advance(); err != nil {
				return "", Atom{}, err
			}
		}
	}
	if _, err := p.expect(tokRParen, "')'"); err != nil {
		return "", Atom{}, err
	}
	if len(terms) == 0 {
		return "", Atom{}, p.lex.errf(name.pos, "atom %s has no terms", rel)
	}
	return node, Atom{Rel: rel, Terms: terms}, nil
}

// bodyItem is either an atom or a comparison; the parser distinguishes by
// lookahead: "term op term" vs "atom".
func (p *parser) bodyItems() (atoms []Atom, nodes []string, cmps []Comparison, err error) {
	for {
		// A comparison starts with a term followed by an operator; an
		// atom starts with ident '(' or ident '.' ident '('. Disambiguate
		// by trying the comparison pattern first when the next-next token
		// is not a paren/dot.
		if p.tok.kind == tokIdent || p.tok.kind == tokInt || p.tok.kind == tokFloat || p.tok.kind == tokString {
			save := *p
			if p.tok.kind == tokIdent {
				// Peek: ident then '(' or '.' means atom.
				if err := p.advance(); err != nil {
					return nil, nil, nil, err
				}
				if p.tok.kind == tokLParen || p.tok.kind == tokDot {
					*p = save
					node, a, err := p.qualifiedAtom()
					if err != nil {
						return nil, nil, nil, err
					}
					atoms = append(atoms, a)
					nodes = append(nodes, node)
					goto next
				}
				*p = save
			}
			// Comparison.
			l, err := p.term()
			if err != nil {
				return nil, nil, nil, err
			}
			opTok, err := p.expect(tokOp, "a comparison operator")
			if err != nil {
				return nil, nil, nil, err
			}
			r, err := p.term()
			if err != nil {
				return nil, nil, nil, err
			}
			cmps = append(cmps, Comparison{Op: opTok.op, L: l, R: r})
		} else {
			return nil, nil, nil, p.lex.errf(p.tok.pos, "expected an atom or comparison")
		}
	next:
		if p.tok.kind != tokComma {
			return atoms, nodes, cmps, nil
		}
		if err := p.advance(); err != nil {
			return nil, nil, nil, err
		}
	}
}

// ErrBadQuery is the sentinel every ParseQuery/ParseRule failure matches
// (errors.Is): callers — the HTTP gateway in particular — can classify a
// failure as "the input was malformed" without string inspection, while the
// error message keeps the parser's position detail.
var ErrBadQuery = errors.New("cq: bad query")

// badQuery marks err as matching ErrBadQuery without changing its message.
type badQuery struct{ err error }

func (e *badQuery) Error() string        { return e.err.Error() }
func (e *badQuery) Unwrap() error        { return e.err }
func (e *badQuery) Is(target error) bool { return target == ErrBadQuery }

// ParseQuery parses "head :- body" with unqualified relation names.
func ParseQuery(src string) (*Query, error) {
	q, err := parseQuery(src)
	if err != nil {
		return nil, &badQuery{err}
	}
	return q, nil
}

func parseQuery(src string) (*Query, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	node, head, err := p.qualifiedAtom()
	if err != nil {
		return nil, err
	}
	if node != "" {
		return nil, fmt.Errorf("cq: query head must not be node-qualified")
	}
	if _, err := p.expect(tokArrowCQ, "':-'"); err != nil {
		return nil, err
	}
	atoms, nodes, cmps, err := p.bodyItems()
	if err != nil {
		return nil, err
	}
	for _, n := range nodes {
		if n != "" {
			return nil, fmt.Errorf("cq: query atoms must not be node-qualified")
		}
	}
	if p.tok.kind != tokEOF {
		return nil, p.lex.errf(p.tok.pos, "trailing input")
	}
	q := &Query{Head: head, Body: atoms, Cmps: cmps}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// MustParseQuery is ParseQuery panicking on error; for tests and examples.
func MustParseQuery(src string) *Query {
	q, err := ParseQuery(src)
	if err != nil {
		panic(err)
	}
	return q
}

// ParseRule parses a GLAV rule "target.h(...) [, target.h2(...)] <-
// source.b(...) [, source.b2(...)] [, comparisons]". Every head atom must be
// qualified with the same target node, every body atom with the same source
// node.
func ParseRule(id, src string) (*Rule, error) {
	r, err := parseRule(id, src)
	if err != nil {
		return nil, &badQuery{err}
	}
	return r, nil
}

func parseRule(id, src string) (*Rule, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	var head []Atom
	target := ""
	for {
		node, a, err := p.qualifiedAtom()
		if err != nil {
			return nil, err
		}
		if node == "" {
			return nil, fmt.Errorf("cq: rule %s: head atom %s must be node-qualified (node.rel)", id, a.Rel)
		}
		if target == "" {
			target = node
		} else if node != target {
			return nil, fmt.Errorf("cq: rule %s: head atoms reference two nodes (%s, %s)", id, target, node)
		}
		head = append(head, a)
		if p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if _, err := p.expect(tokArrowRule, "'<-'"); err != nil {
		return nil, err
	}
	atoms, nodes, cmps, err := p.bodyItems()
	if err != nil {
		return nil, err
	}
	if len(atoms) == 0 {
		return nil, fmt.Errorf("cq: rule %s has no body atoms", id)
	}
	source := ""
	for i, n := range nodes {
		if n == "" {
			return nil, fmt.Errorf("cq: rule %s: body atom %s must be node-qualified", id, atoms[i].Rel)
		}
		if source == "" {
			source = n
		} else if n != source {
			return nil, fmt.Errorf("cq: rule %s: body atoms reference two nodes (%s, %s)", id, source, n)
		}
	}
	if p.tok.kind != tokEOF {
		return nil, p.lex.errf(p.tok.pos, "trailing input")
	}
	r := &Rule{ID: id, Target: target, Source: source, Head: head, Body: atoms, Cmps: cmps}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return r, nil
}

// ParseFilter parses a comma-separated list of comparison predicates
// ("x > 10, y != \"hr\"") — the concrete syntax of a per-link propagation
// filter. The variables are resolved by the caller against the link rule's
// frontier; ParseFilter only checks the comparison grammar. Failures match
// ErrBadQuery like every other parse error.
func ParseFilter(src string) ([]Comparison, error) {
	cmps, err := parseFilter(src)
	if err != nil {
		return nil, &badQuery{err}
	}
	return cmps, nil
}

func parseFilter(src string) ([]Comparison, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	atoms, _, cmps, err := p.bodyItems()
	if err != nil {
		return nil, err
	}
	if len(atoms) > 0 {
		return nil, fmt.Errorf("cq: filter must contain only comparisons, found atom %s", atoms[0].Rel)
	}
	if len(cmps) == 0 {
		return nil, fmt.Errorf("cq: filter has no comparisons")
	}
	if p.tok.kind != tokEOF {
		return nil, p.lex.errf(p.tok.pos, "trailing input")
	}
	return cmps, nil
}

// MustParseRule is ParseRule panicking on error; for tests and examples.
func MustParseRule(id, src string) *Rule {
	r, err := ParseRule(id, src)
	if err != nil {
		panic(err)
	}
	return r
}
