package cq

import (
	"fmt"
	"sort"
	"testing"

	"codb/internal/relation"
)

// shardedInstance is a test double for a hash-sharded immutable source
// (the shape storage snapshots have): per-relation shards, each in key
// order, whose union is the relation.
type shardedInstance struct {
	shards map[string][][]relation.Tuple
}

func newShardedInstance(n int) *shardedInstance {
	return &shardedInstance{shards: make(map[string][][]relation.Tuple)}
}

func (s *shardedInstance) add(rel string, n int, tuples ...relation.Tuple) {
	parts := make([][]relation.Tuple, n)
	for _, t := range tuples {
		k := t.Key()
		h := 0
		for i := 0; i < len(k); i++ {
			h = h*131 + int(k[i])
		}
		idx := h % n
		if idx < 0 {
			idx += n
		}
		parts[idx] = append(parts[idx], t)
	}
	for _, p := range parts {
		sort.Slice(p, func(i, j int) bool { return p[i].Compare(p[j]) < 0 })
	}
	s.shards[rel] = parts
}

func (s *shardedInstance) Scan(rel string, fn func(relation.Tuple) bool) {
	var all []relation.Tuple
	for _, p := range s.shards[rel] {
		all = append(all, p...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Compare(all[j]) < 0 })
	for _, t := range all {
		if !fn(t) {
			return
		}
	}
}

func (s *shardedInstance) ShardCount(rel string) int { return len(s.shards[rel]) }

func (s *shardedInstance) ScanShard(rel string, shard int, fn func(relation.Tuple) bool) {
	parts := s.shards[rel]
	if shard < 0 || shard >= len(parts) {
		return
	}
	for _, t := range parts[shard] {
		if !fn(t) {
			return
		}
	}
}

var _ ShardedSource = (*shardedInstance)(nil)

// TestShardedBuildMatchesSerial evaluates a join query over a sharded
// source at every parallelism level: results must be bit-identical (same
// tuples, same order) to the serial evaluation.
func TestShardedBuildMatchesSerial(t *testing.T) {
	for _, nshards := range []int{1, 3, 8} {
		src := newShardedInstance(nshards)
		var edges, attrs []relation.Tuple
		for i := 0; i < 200; i++ {
			edges = append(edges, relation.Tuple{relation.Int(i), relation.Int((i*7 + 3) % 120)})
			attrs = append(attrs, relation.Tuple{relation.Int(i % 120), relation.Str(fmt.Sprintf("v%d", i%9))})
		}
		src.add("edge", nshards, edges...)
		src.add("attr", nshards, attrs...)
		q := MustParseQuery(`ans(x, a) :- edge(x, y), attr(y, a), x >= 10`)

		serial, err := Eval(q, src, EvalOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if len(serial) == 0 {
			t.Fatal("empty serial result: bad fixture")
		}
		for _, par := range []int{2, 4, 9} {
			got, err := Eval(q, src, EvalOptions{Parallelism: par})
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(serial) {
				t.Fatalf("shards=%d par=%d: %d answers, serial %d", nshards, par, len(got), len(serial))
			}
			for i := range got {
				if !got[i].Equal(serial[i]) {
					t.Fatalf("shards=%d par=%d: answer %d = %v, serial %v", nshards, par, i, got[i], serial[i])
				}
			}
		}
	}
}

// TestShardedBuildWithDelta checks that delta atoms never fan out (the
// delta slice is not sharded) while other atoms of the same body may.
func TestShardedBuildWithDelta(t *testing.T) {
	src := newShardedInstance(4)
	var edges []relation.Tuple
	for i := 0; i < 150; i++ {
		edges = append(edges, relation.Tuple{relation.Int(i), relation.Int(i + 1)})
	}
	src.add("edge", 4, edges...)
	delta := []relation.Tuple{{relation.Int(5), relation.Int(6)}, {relation.Int(9), relation.Int(10)}}
	body := []Atom{
		{Rel: "edge", Terms: []Term{V("x"), V("y")}},
		{Rel: "edge", Terms: []Term{V("y"), V("z")}},
	}
	serial, err := EvalDelta(body, nil, []string{"x", "z"}, src, "edge", delta, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := EvalDelta(body, nil, []string{"x", "z"}, src, "edge", delta, EvalOptions{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(par) != len(serial) {
		t.Fatalf("parallel delta: %d answers, serial %d", len(par), len(serial))
	}
	for i := range par {
		if !par[i].Equal(serial[i]) {
			t.Fatalf("delta answer %d diverges: %v vs %v", i, par[i], serial[i])
		}
	}
}
