package cq

import "testing"

// Native Go fuzz targets for the parser: any input may be rejected with an
// error, but must never panic, and accepted inputs must round-trip —
// re-parsing the String() rendering of a parsed query/rule must succeed
// (the concrete syntax the AST prints is the syntax the parser reads).

func FuzzParseQuery(f *testing.F) {
	for _, seed := range []string{
		`ans(x, y) :- data(x, y)`,
		`ans(x) :- r(x, y), s(y, z), z != 3`,
		`ans(n) :- patient(x, n)`,
		`ans(x, z) :- data(x, y), data(y, z), x >= 10`,
		`q(x) :- r(x, "lit"), x < 4.5`,
		`q() :- r(true)`,
		`a(x) :- b(x), x != "a, b"`,
		`ans(x):-r(x),x>=-7`,
		`ans (x) :- r ( x , y ) , x = y`,
		``,
		`:-`,
		`ans(x :- r(x)`,
		"ans(x) :- r(\x00)",
		`ans(𝛼) :- r(𝛼)`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := ParseQuery(src)
		if err != nil || q == nil {
			return
		}
		rendered := q.String()
		if _, err := ParseQuery(rendered); err != nil {
			t.Fatalf("round-trip failed: %q parsed but its rendering %q did not: %v", src, rendered, err)
		}
	})
}

func FuzzParseRule(f *testing.F) {
	for _, seed := range []string{
		`A.r(x) <- B.r(x)`,
		`hospital.patient(x, n) <- clinic.visitor(x, n)`,
		`T.out(x, z) <- S.a(x, y), S.b(y, z), y > 0`,
		`T.e(x, y) <- S.e(x, y)`,
		`N1.data(k, v) <- N0.data(k, v), k != 0`,
		`T.r(x, n) <- S.r(x)`, // existential head variable
		`T.a(x), T.b(x) <- S.c(x)`,
		`A.r("s") <- B.r("s")`,
		``,
		`<-`,
		`A.r(x) <- `,
		`A.r(x <- B.r(x)`,
		`A.r(x) <- B.r(x), x <`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		r, err := ParseRule("f1", src)
		if err != nil || r == nil {
			return
		}
		if r.Target == "" || r.Source == "" {
			t.Fatalf("parsed rule %q has empty endpoint: %+v", src, r)
		}
	})
}
