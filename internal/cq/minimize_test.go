package cq

import "testing"

func TestMinimizeDropsRedundantAtom(t *testing.T) {
	// r(x,y), r(x,w): the second atom maps onto the first.
	q := MustParseQuery(`ans(x) :- r(x, y), r(x, w)`)
	m, err := Minimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Body) != 1 {
		t.Errorf("minimized body = %v", m.Body)
	}
	eq, err := Equivalent(q, m)
	if err != nil || !eq {
		t.Errorf("minimized query not equivalent: %v %v", eq, err)
	}
}

func TestMinimizeKeepsNecessaryAtoms(t *testing.T) {
	// A genuine path of length 2: nothing removable.
	q := MustParseQuery(`ans(x, z) :- e(x, y), e(y, z)`)
	m, err := Minimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Body) != 2 {
		t.Errorf("over-minimized: %v", m.Body)
	}
}

func TestMinimizeClassicTriangle(t *testing.T) {
	// e(x,y), e(y,z), e(x,w): the dangling e(x,w) folds into e(x,y).
	q := MustParseQuery(`ans(x, z) :- e(x, y), e(y, z), e(x, w)`)
	m, err := Minimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Body) != 2 {
		t.Errorf("minimized body = %v", m.Body)
	}
}

func TestMinimizeRespectsHeadSafety(t *testing.T) {
	// Both atoms bind head variables; nothing can go.
	q := MustParseQuery(`ans(x, y) :- r(x, w), s(y, w)`)
	m, err := Minimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Body) != 2 {
		t.Errorf("broke head safety: %v", m.Body)
	}
}

func TestMinimizeWithComparisonsUnchanged(t *testing.T) {
	q := MustParseQuery(`ans(x) :- r(x, y), r(x, w), x > 1`)
	m, err := Minimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Body) != 2 {
		t.Errorf("query with comparisons must be untouched: %v", m.Body)
	}
}

func TestMinimizeSingleAtom(t *testing.T) {
	q := MustParseQuery(`ans(x) :- r(x, x)`)
	m, err := Minimize(q)
	if err != nil || len(m.Body) != 1 {
		t.Errorf("single atom: %v %v", m, err)
	}
}

func TestMinimizeConstantsBlockFolding(t *testing.T) {
	// r(x, 1) and r(x, 2) cannot fold onto each other.
	q := MustParseQuery(`ans(x) :- r(x, 1), r(x, 2)`)
	m, err := Minimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Body) != 2 {
		t.Errorf("distinct constants folded: %v", m.Body)
	}
}

func TestMinimizePreservesAnswers(t *testing.T) {
	q := MustParseQuery(`ans(x) :- emp(x, n, d), emp(x, m, e)`)
	m, err := Minimize(q)
	if err != nil {
		t.Fatal(err)
	}
	in := testInstance()
	orig, _ := Eval(q, in, EvalOptions{})
	mini, _ := Eval(m, in, EvalOptions{})
	if !sameTuples(orig, mini) {
		t.Errorf("answers changed: %v vs %v", orig, mini)
	}
	if len(m.Body) != 1 {
		t.Errorf("self-join over same relation not folded: %v", m.Body)
	}
}
