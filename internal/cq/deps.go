package cq

// Dependency analysis between coordination rules, used by the peer runtime
// to decide which incoming links must be recomputed when an outgoing link
// delivers new data, and which outgoing links are relevant to a query.
//
// Terminology (paper §3): at a node, an incoming link i *depends on* an
// outgoing link o iff the head of o writes a relation that a body subgoal of
// i reads. Equivalently, o is *relevant for* i.

// DependsOn reports whether incoming rule `in` (body over this node's
// schema) depends on outgoing rule `out` (head over this node's schema).
func DependsOn(in, out *Rule) bool {
	heads := out.HeadRelations()
	for _, b := range in.BodyRelations() {
		if contains(heads, b) {
			return true
		}
	}
	return false
}

// RelevantTo reports whether outgoing rule `out`'s head writes any relation
// in the given set (e.g. the relations a query's body reads, or their
// transitive closure).
func RelevantTo(out *Rule, rels map[string]bool) bool {
	for _, h := range out.HeadRelations() {
		if rels[h] {
			return true
		}
	}
	return false
}

// Closure computes the transitive closure of relation relevance inside one
// node: starting from seed relations, repeatedly adds the body relations of
// every local rule projection... coDB nodes do not rewrite locally, so the
// local closure is just the seed set; cross-node closure is performed by the
// query propagation itself (each hop recomputes relevance against its own
// links). Closure is provided for the local planner: given seed relations
// and the node's outgoing rules, it returns the set of outgoing rules whose
// heads intersect the seeds.
func Closure(seeds []string, outgoing []*Rule) []*Rule {
	set := make(map[string]bool, len(seeds))
	for _, s := range seeds {
		set[s] = true
	}
	var out []*Rule
	for _, r := range outgoing {
		if RelevantTo(r, set) {
			out = append(out, r)
		}
	}
	return out
}

// DependencyGraph captures, for one node, which incoming links depend on
// which outgoing links.
type DependencyGraph struct {
	// ByOutgoing maps an outgoing rule ID to the incoming rule IDs that
	// depend on it.
	ByOutgoing map[string][]string
	// ByIncoming maps an incoming rule ID to the outgoing rule IDs
	// relevant for it.
	ByIncoming map[string][]string
}

// BuildDependencyGraph computes the node-local dependency graph between the
// given incoming and outgoing rules.
func BuildDependencyGraph(incoming, outgoing []*Rule) *DependencyGraph {
	g := &DependencyGraph{
		ByOutgoing: make(map[string][]string),
		ByIncoming: make(map[string][]string),
	}
	for _, o := range outgoing {
		g.ByOutgoing[o.ID] = nil
	}
	for _, in := range incoming {
		g.ByIncoming[in.ID] = nil
		for _, o := range outgoing {
			if DependsOn(in, o) {
				g.ByOutgoing[o.ID] = append(g.ByOutgoing[o.ID], in.ID)
				g.ByIncoming[in.ID] = append(g.ByIncoming[in.ID], o.ID)
			}
		}
	}
	return g
}
