package cq

// Minimize removes redundant body atoms from a conjunctive query: an atom
// is redundant when dropping it yields an equivalent query (checked with
// the Chandra–Merlin containment test). The result is the query's core, a
// classic optimisation before evaluation or before shipping a rule body
// across the network.
//
// Queries with comparison predicates are returned unchanged (containment
// does not support them); atoms whose removal would unbind a head variable
// are never dropped.
func Minimize(q *Query) (*Query, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if len(q.Cmps) > 0 {
		return q, nil
	}
	cur := &Query{
		Head: q.Head,
		Body: append([]Atom(nil), q.Body...),
	}
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(cur.Body); i++ {
			if len(cur.Body) == 1 {
				break // a query needs a nonempty body
			}
			cand := &Query{Head: cur.Head, Body: removeAtom(cur.Body, i)}
			if cand.Validate() != nil {
				continue // removal unbinds a head variable
			}
			// cand has fewer constraints, so cur ⊆ cand always holds;
			// equivalence needs cand ⊆ cur.
			contained, err := Contains(cur, cand)
			if err != nil {
				return nil, err
			}
			if contained {
				cur = cand
				changed = true
				i--
			}
		}
	}
	return cur, nil
}

func removeAtom(body []Atom, i int) []Atom {
	out := make([]Atom, 0, len(body)-1)
	out = append(out, body[:i]...)
	return append(out, body[i+1:]...)
}
