package cq

import (
	"fmt"

	"codb/internal/relation"
)

// Contains reports whether q1 ⊇ q2, i.e. every answer of q2 over every
// instance is an answer of q1 (q2 is contained in q1). Classic
// Chandra–Merlin test: freeze q2 into its canonical database (variables
// become distinct constants), evaluate q1 over it, and check that the frozen
// head of q2 is among the answers.
//
// Comparisons are handled conservatively: if either query carries
// comparison predicates the test returns an error (containment with
// comparisons needs a different machinery), except when the comparison sets
// are syntactically identical after variable freezing, in which case they
// cancel. Queries must have equal head arity.
func Contains(q1, q2 *Query) (bool, error) {
	if err := q1.Validate(); err != nil {
		return false, err
	}
	if err := q2.Validate(); err != nil {
		return false, err
	}
	if len(q1.Head.Terms) != len(q2.Head.Terms) {
		return false, nil
	}
	if len(q1.Cmps) > 0 || len(q2.Cmps) > 0 {
		return false, fmt.Errorf("cq: containment with comparison predicates is not supported")
	}

	// Freeze q2: each variable becomes a fresh labelled constant. Marked
	// nulls double as frozen constants (they join by label, exactly what
	// freezing needs).
	frozen := make(map[string]relation.Value)
	freeze := func(t Term) relation.Value {
		if !t.IsVar() {
			return t.Const
		}
		v, ok := frozen[t.Var]
		if !ok {
			v = relation.Null("frozen:" + t.Var)
			frozen[t.Var] = v
		}
		return v
	}
	canon := relation.NewInstance()
	for _, a := range q2.Body {
		tuple := make(relation.Tuple, len(a.Terms))
		for i, t := range a.Terms {
			tuple[i] = freeze(t)
		}
		canon.Insert(a.Rel, tuple)
	}
	wantHead := make(relation.Tuple, len(q2.Head.Terms))
	for i, t := range q2.Head.Terms {
		wantHead[i] = freeze(t)
	}

	answers, err := Eval(q1, canon, EvalOptions{})
	if err != nil {
		return false, err
	}
	for _, t := range answers {
		if t.Equal(wantHead) {
			return true, nil
		}
	}
	return false, nil
}

// Equivalent reports whether the two queries are equivalent (mutual
// containment).
func Equivalent(q1, q2 *Query) (bool, error) {
	a, err := Contains(q1, q2)
	if err != nil || !a {
		return false, err
	}
	return Contains(q2, q1)
}
