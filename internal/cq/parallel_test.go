package cq

import (
	"fmt"
	"testing"

	"codb/internal/relation"
)

// bigJoinSource builds an instance large enough to trigger the parallel
// probe path (binding sets well past parallelMinBindings).
func bigJoinSource(n int) relation.Instance {
	in := relation.NewInstance()
	for i := 0; i < n; i++ {
		in.Insert("r", relation.Tuple{relation.Int(i), relation.Int(i % 97)})
		in.Insert("s", relation.Tuple{relation.Int(i % 97), relation.Int(i % 11)})
	}
	return in
}

func TestParallelEvalMatchesSerial(t *testing.T) {
	src := bigJoinSource(4 * parallelMinBindings)
	queries := []string{
		`ans(x, z) :- r(x, y), s(y, z)`,
		`ans(x) :- r(x, y), s(y, z), z != 3`,
		`ans(y, c) :- r(x, y), s(y2, c), y = y2, x >= 10`,
		`ans(x, y) :- r(x, y)`,
	}
	for _, qs := range queries {
		q := MustParseQuery(qs)
		serial, err := Eval(q, src, EvalOptions{})
		if err != nil {
			t.Fatalf("%s: serial: %v", qs, err)
		}
		for _, workers := range []int{2, 4, 16} {
			par, err := Eval(q, src, EvalOptions{Parallelism: workers})
			if err != nil {
				t.Fatalf("%s: parallel(%d): %v", qs, workers, err)
			}
			if len(par) != len(serial) {
				t.Fatalf("%s: parallel(%d) returned %d tuples, serial %d", qs, workers, len(par), len(serial))
			}
			// Parallel partitions concatenate in order, so the result must
			// be identical tuple for tuple, not just as a set.
			for i := range serial {
				if serial[i].Key() != par[i].Key() {
					t.Fatalf("%s: parallel(%d) diverges at %d: %v vs %v", qs, workers, i, par[i], serial[i])
				}
			}
		}
	}
}

func TestParallelEvalSmallInputsStaySerial(t *testing.T) {
	// Small binding sets must not fan out (probe falls back to one worker);
	// results still match.
	in := relation.NewInstance()
	for i := 0; i < 10; i++ {
		in.Insert("r", relation.Tuple{relation.Int(i), relation.Int(i)})
	}
	q := MustParseQuery(`ans(x) :- r(x, y)`)
	serial, err := Eval(q, in, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Eval(q, in, EvalOptions{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(par) {
		t.Fatalf("parallel small eval %d tuples, serial %d", len(par), len(serial))
	}
}

func BenchmarkEvalParallel(b *testing.B) {
	src := bigJoinSource(8 * parallelMinBindings)
	q := MustParseQuery(`ans(x, z) :- r(x, y), s(y, z)`)
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Eval(q, src, EvalOptions{Parallelism: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
