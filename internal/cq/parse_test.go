package cq

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"codb/internal/relation"
)

func TestParseQueryBasic(t *testing.T) {
	q, err := ParseQuery(`ans(x, y) :- emp(x, d), dept(d, y)`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Head.Rel != "ans" || len(q.Head.Terms) != 2 {
		t.Errorf("head = %v", q.Head)
	}
	if len(q.Body) != 2 || q.Body[0].Rel != "emp" || q.Body[1].Rel != "dept" {
		t.Errorf("body = %v", q.Body)
	}
	if len(q.Cmps) != 0 {
		t.Errorf("cmps = %v", q.Cmps)
	}
}

func TestParseQueryConstantsAndComparisons(t *testing.T) {
	q, err := ParseQuery(`ans(x) :- r(x, 10, -3, 2.5, "it\"s", true, false), x > 5, x != 7, "a" < "b", x <= 10, x >= 0, x = x`)
	if err != nil {
		t.Fatal(err)
	}
	terms := q.Body[0].Terms
	want := []relation.Value{
		{}, relation.Int(10), relation.Int(-3), relation.Float(2.5),
		relation.Str(`it"s`), relation.Bool(true), relation.Bool(false),
	}
	if !terms[0].IsVar() {
		t.Error("x should be a variable")
	}
	for i := 1; i < len(want); i++ {
		if terms[i].IsVar() || terms[i].Const != want[i] {
			t.Errorf("term %d = %v, want %v", i, terms[i], want[i])
		}
	}
	ops := []CmpOp{OpGt, OpNe, OpLt, OpLe, OpGe, OpEq}
	if len(q.Cmps) != len(ops) {
		t.Fatalf("cmps = %v", q.Cmps)
	}
	for i, c := range q.Cmps {
		if c.Op != ops[i] {
			t.Errorf("cmp %d op = %v, want %v", i, c.Op, ops[i])
		}
	}
}

func TestParseQueryAnonymousVars(t *testing.T) {
	q, err := ParseQuery(`ans(x) :- r(x, _), s(_, x)`)
	if err != nil {
		t.Fatal(err)
	}
	a1 := q.Body[0].Terms[1].Var
	a2 := q.Body[1].Terms[0].Var
	if a1 == "" || a2 == "" || a1 == a2 {
		t.Errorf("anonymous vars = %q, %q (must be distinct fresh vars)", a1, a2)
	}
}

func TestParseQueryComments(t *testing.T) {
	q, err := ParseQuery("ans(x) :- # head comment\n r(x) # trailing")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Body) != 1 {
		t.Errorf("body = %v", q.Body)
	}
}

func TestParseQueryErrors(t *testing.T) {
	bad := []string{
		``,
		`ans(x)`,
		`ans(x) :- `,
		`ans(x) :- r(y)`,           // unsafe head
		`ans(x) :- r(x), y > 2`,    // unsafe comparison
		`ans(x) :- r(x,`,           // truncated
		`ans(x) :- r()`,            // empty atom
		`ans(x) :- n.r(x)`,         // qualified atom in query
		`n.ans(x) :- r(x)`,         // qualified head
		`ans(x) :- r(x) s(x)`,      // missing comma
		`ans(x) :- r(x), x ! 2`,    // bad operator
		`ans(x) :- r(x), x > -`,    // dangling minus
		`ans(x) :- r(x), x > "a`,   // unterminated string
		`ans(x) :- r(x), x > "\q"`, // bad escape
		`ans(x) : - r(x)`,          // broken arrow
	}
	for _, src := range bad {
		if _, err := ParseQuery(src); err == nil {
			t.Errorf("ParseQuery(%q) accepted", src)
		}
	}
}

func TestParseRuleBasic(t *testing.T) {
	r, err := ParseRule("r1", `N1.person(x, n) <- N2.emp(x, n, d), d = "sales"`)
	if err != nil {
		t.Fatal(err)
	}
	if r.ID != "r1" || r.Target != "N1" || r.Source != "N2" {
		t.Errorf("rule = %+v", r)
	}
	if len(r.Head) != 1 || r.Head[0].Rel != "person" {
		t.Errorf("head = %v", r.Head)
	}
	if len(r.Body) != 1 || r.Body[0].Rel != "emp" {
		t.Errorf("body = %v", r.Body)
	}
	if len(r.Cmps) != 1 || r.Cmps[0].Op != OpEq {
		t.Errorf("cmps = %v", r.Cmps)
	}
}

func TestParseRuleMultiAtomAndExistential(t *testing.T) {
	r, err := ParseRule("r2", `A.boss(x, z), A.knows(x, z) <- B.mgr(x, y), B.dept(y, w)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Head) != 2 {
		t.Fatalf("head = %v", r.Head)
	}
	fr := r.Frontier()
	ex := r.Existentials()
	if len(fr) != 1 || fr[0] != "x" {
		t.Errorf("frontier = %v", fr)
	}
	if len(ex) != 1 || ex[0] != "z" {
		t.Errorf("existentials = %v", ex)
	}
	if got := r.HeadRelations(); len(got) != 2 {
		t.Errorf("head relations = %v", got)
	}
	if got := r.BodyRelations(); len(got) != 2 {
		t.Errorf("body relations = %v", got)
	}
}

func TestParseRuleErrors(t *testing.T) {
	bad := []string{
		``,
		`A.h(x) <- B.b(x,`,
		`h(x) <- B.b(x)`,            // unqualified head
		`A.h(x) <- b(x)`,            // unqualified body
		`A.h(x), C.h2(x) <- B.b(x)`, // two target nodes
		`A.h(x) <- B.b(x), C.c(x)`,  // two source nodes
		`A.h(x) <- B.b(x), y > 1`,   // unsafe comparison
		`A.h(x) <- B.b(x) extra`,    // trailing input
	}
	for _, src := range bad {
		if _, err := ParseRule("r", src); err == nil {
			t.Errorf("ParseRule(%q) accepted", src)
		}
	}
}

func TestRuleStringRoundTrip(t *testing.T) {
	src := `N1.person(x, n) <- N2.emp(x, n, d), d = "sales"`
	r := MustParseRule("r1", src)
	r2, err := ParseRule("r1", r.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", r.String(), err)
	}
	if r2.String() != r.String() {
		t.Errorf("round trip: %q vs %q", r.String(), r2.String())
	}
}

func TestQueryStringRoundTrip(t *testing.T) {
	src := `ans(x, y) :- emp(x, d), dept(d, y), x > 10`
	q := MustParseQuery(src)
	q2, err := ParseQuery(q.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", q.String(), err)
	}
	if q2.String() != q.String() {
		t.Errorf("round trip: %q vs %q", q.String(), q2.String())
	}
	if !strings.Contains(q.String(), ":-") {
		t.Error("query String missing arrow")
	}
}

// TestQuickQueryPrintParseRoundTrip: rendering a random query and parsing
// it back is the identity (up to rendering).
func TestQuickQueryPrintParseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		q := randomQuery(rnd)
		if q.Validate() != nil {
			return true // generator may emit all-constant heads; skip
		}
		text := q.String()
		q2, err := ParseQuery(text)
		if err != nil {
			t.Logf("re-parse of %q failed: %v", text, err)
			return false
		}
		return q2.String() == text
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParseQuery did not panic on bad input")
		}
	}()
	MustParseQuery("oops")
}
