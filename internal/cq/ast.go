// Package cq implements conjunctive queries and GLAV coordination rules:
// the logical language of coDB. It provides the AST, a parser for the
// datalog-like concrete syntax, an evaluator (hash-join and nested-loop
// strategies), semi-naive delta evaluation, dependency analysis, and a
// containment check via the canonical-database homomorphism test.
package cq

import (
	"fmt"
	"strings"

	"codb/internal/relation"
)

// Term is either a variable or a constant.
type Term struct {
	// Var is the variable name; empty for constants.
	Var string
	// Const is the constant value; meaningful only when Var == "".
	Const relation.Value
}

// V returns a variable term.
func V(name string) Term { return Term{Var: name} }

// C returns a constant term.
func C(v relation.Value) Term { return Term{Const: v} }

// IsVar reports whether the term is a variable.
func (t Term) IsVar() bool { return t.Var != "" }

// String renders the term in concrete syntax.
func (t Term) String() string {
	if t.IsVar() {
		return t.Var
	}
	return t.Const.String()
}

// Atom is a relational atom R(t1, ..., tn).
type Atom struct {
	Rel   string
	Terms []Term
}

// NewAtom builds an atom.
func NewAtom(rel string, terms ...Term) Atom { return Atom{Rel: rel, Terms: terms} }

// Vars appends the distinct variables of the atom to dst, in order of first
// occurrence.
func (a Atom) Vars(dst []string) []string {
	for _, t := range a.Terms {
		if t.IsVar() && !contains(dst, t.Var) {
			dst = append(dst, t.Var)
		}
	}
	return dst
}

// String renders the atom.
func (a Atom) String() string {
	var b strings.Builder
	b.WriteString(a.Rel)
	b.WriteByte('(')
	for i, t := range a.Terms {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.String())
	}
	b.WriteByte(')')
	return b.String()
}

// CmpOp is a comparison operator.
type CmpOp uint8

// Comparison operators permitted in rule bodies and query bodies.
const (
	OpEq CmpOp = iota + 1
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// String renders the operator.
func (o CmpOp) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Eval applies the operator to two values. Comparisons involving marked
// nulls are false (a null's value is unknown), except = and != which use
// label identity so that nulls can still join consistently.
func (o CmpOp) Eval(l, r relation.Value) bool {
	if l.Kind == relation.KindNull || r.Kind == relation.KindNull {
		switch o {
		case OpEq:
			return l == r
		case OpNe:
			return l != r
		default:
			return false
		}
	}
	c := l.Compare(r)
	switch o {
	case OpEq:
		return c == 0
	case OpNe:
		return c != 0
	case OpLt:
		return c < 0
	case OpLe:
		return c <= 0
	case OpGt:
		return c > 0
	case OpGe:
		return c >= 0
	default:
		return false
	}
}

// Comparison is a predicate "l op r" over terms.
type Comparison struct {
	Op   CmpOp
	L, R Term
}

// String renders the comparison.
func (c Comparison) String() string {
	return fmt.Sprintf("%s %s %s", c.L, c.Op, c.R)
}

// Vars appends the distinct variables of the comparison to dst.
func (c Comparison) Vars(dst []string) []string {
	for _, t := range []Term{c.L, c.R} {
		if t.IsVar() && !contains(dst, t.Var) {
			dst = append(dst, t.Var)
		}
	}
	return dst
}

// EvalComparisons reports whether a binding tuple, laid out in the given
// variable order, satisfies every comparison. Variables not present in vars
// (and positions past the end of the binding) fail the comparison — callers
// validate variable coverage up front (e.g. against a rule's frontier), so
// a mismatch here means a malformed binding, which must not pass a filter.
func EvalComparisons(cmps []Comparison, vars []string, binding relation.Tuple) bool {
	resolve := func(t Term) (relation.Value, bool) {
		if !t.IsVar() {
			return t.Const, true
		}
		for i, v := range vars {
			if v == t.Var {
				if i >= len(binding) {
					return relation.Value{}, false
				}
				return binding[i], true
			}
		}
		return relation.Value{}, false
	}
	for _, c := range cmps {
		l, ok := resolve(c.L)
		if !ok {
			return false
		}
		r, ok := resolve(c.R)
		if !ok {
			return false
		}
		if !c.Op.Eval(l, r) {
			return false
		}
	}
	return true
}

// Query is a conjunctive query with one head atom, a body of relational
// atoms, and comparison predicates.
type Query struct {
	Head Atom
	Body []Atom
	Cmps []Comparison
}

// String renders the query in concrete syntax.
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString(q.Head.String())
	b.WriteString(" :- ")
	for i, a := range q.Body {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.String())
	}
	for _, c := range q.Cmps {
		b.WriteString(", ")
		b.WriteString(c.String())
	}
	return b.String()
}

// BodyVars returns the distinct variables of the body atoms in order of
// first occurrence.
func (q *Query) BodyVars() []string {
	var vars []string
	for _, a := range q.Body {
		vars = a.Vars(vars)
	}
	return vars
}

// Validate checks query safety: a nonempty body, every head variable bound
// by the body, and every comparison variable bound by the body.
func (q *Query) Validate() error {
	if len(q.Body) == 0 {
		return fmt.Errorf("cq: query %s has an empty body", q.Head.Rel)
	}
	bodyVars := q.BodyVars()
	for _, t := range q.Head.Terms {
		if t.IsVar() && !contains(bodyVars, t.Var) {
			return fmt.Errorf("cq: head variable %s not bound by the body", t.Var)
		}
	}
	for _, c := range q.Cmps {
		for _, v := range c.Vars(nil) {
			if !contains(bodyVars, v) {
				return fmt.Errorf("cq: comparison variable %s not bound by the body", v)
			}
		}
	}
	return nil
}

// Relations returns the distinct relation names referenced by the body.
func (q *Query) Relations() []string {
	var rels []string
	for _, a := range q.Body {
		if !contains(rels, a.Rel) {
			rels = append(rels, a.Rel)
		}
	}
	return rels
}

// Rule is a GLAV coordination rule: an inclusion of conjunctive queries.
// The body is evaluated at the Source node; for each result, the Head atoms
// are asserted at the Target node, with existential variables (head
// variables not bound by the body) instantiated by fresh marked nulls.
type Rule struct {
	// ID identifies the rule network-wide (e.g. "r1").
	ID string
	// Target is the importing node (head side); Source is the exporting
	// acquaintance (body side).
	Target, Source string
	Head           []Atom
	Body           []Atom
	Cmps           []Comparison
}

// Frontier returns the head variables bound by the body (shared variables),
// in order of first occurrence in the head.
func (r *Rule) Frontier() []string {
	bodyVars := r.bodyVars()
	var out []string
	for _, a := range r.Head {
		for _, t := range a.Terms {
			if t.IsVar() && contains(bodyVars, t.Var) && !contains(out, t.Var) {
				out = append(out, t.Var)
			}
		}
	}
	return out
}

// Existentials returns the head variables not bound by the body.
func (r *Rule) Existentials() []string {
	bodyVars := r.bodyVars()
	var out []string
	for _, a := range r.Head {
		for _, t := range a.Terms {
			if t.IsVar() && !contains(bodyVars, t.Var) && !contains(out, t.Var) {
				out = append(out, t.Var)
			}
		}
	}
	return out
}

func (r *Rule) bodyVars() []string {
	var vars []string
	for _, a := range r.Body {
		vars = a.Vars(vars)
	}
	return vars
}

// HeadRelations returns the distinct relation names written by the head.
func (r *Rule) HeadRelations() []string {
	var rels []string
	for _, a := range r.Head {
		if !contains(rels, a.Rel) {
			rels = append(rels, a.Rel)
		}
	}
	return rels
}

// BodyRelations returns the distinct relation names read by the body.
func (r *Rule) BodyRelations() []string {
	var rels []string
	for _, a := range r.Body {
		if !contains(rels, a.Rel) {
			rels = append(rels, a.Rel)
		}
	}
	return rels
}

// Validate checks rule well-formedness: nonempty head and body and every
// comparison variable bound by the body. (Existential head variables are
// legal; that is the point of GLAV.)
func (r *Rule) Validate() error {
	if len(r.Head) == 0 {
		return fmt.Errorf("cq: rule %s has an empty head", r.ID)
	}
	if len(r.Body) == 0 {
		return fmt.Errorf("cq: rule %s has an empty body", r.ID)
	}
	bodyVars := r.bodyVars()
	for _, c := range r.Cmps {
		for _, v := range c.Vars(nil) {
			if !contains(bodyVars, v) {
				return fmt.Errorf("cq: rule %s: comparison variable %s not bound by the body", r.ID, v)
			}
		}
	}
	return nil
}

// String renders the rule in concrete syntax:
// "target.h(x) <- source.b(x, y), y > 0".
func (r *Rule) String() string {
	var b strings.Builder
	for i, a := range r.Head {
		if i > 0 {
			b.WriteString(", ")
		}
		if r.Target != "" {
			b.WriteString(r.Target)
			b.WriteByte('.')
		}
		b.WriteString(a.String())
	}
	b.WriteString(" <- ")
	for i, a := range r.Body {
		if i > 0 {
			b.WriteString(", ")
		}
		if r.Source != "" {
			b.WriteString(r.Source)
			b.WriteByte('.')
		}
		b.WriteString(a.String())
	}
	for _, c := range r.Cmps {
		b.WriteString(", ")
		b.WriteString(c.String())
	}
	return b.String()
}

func contains(xs []string, x string) bool {
	for _, y := range xs {
		if y == x {
			return true
		}
	}
	return false
}
