package transport

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"codb/internal/msg"
)

// TCP is the socket transport: one listener per node, one TCP connection
// per pipe, length-prefixed gob frames. The handshake is a name frame in
// each direction's first message slot, after which both sides exchange
// envelopes. Either side may dial; a second connection to the same peer
// replaces the first.
//
// After the handshake each direction of a connection is one continuous gob
// stream: the writer keeps a per-connection gob.Encoder (so type
// definitions cross the wire once per connection, not once per message) and
// the reader a matching gob.Decoder fed frame by frame. Frames therefore
// are not individually decodable — an undecodable frame loses the stream
// state and tears the pipe down (the peer layer re-establishes pipes and
// compensates the termination detector for lost messages).
//
// Batch envelopes (msg.Batch, produced by the Outbox) are unpacked here on
// receive: the handler sees one envelope per packed payload, in order.
type TCP struct {
	self string
	ln   net.Listener
	box  *mailbox

	mu     sync.Mutex
	conns  map[string]*tcpConn
	closed bool
	wg     sync.WaitGroup

	handlerMu sync.Mutex
	handler   Handler
	pipeDown  func(peer string)

	frames atomic.Uint64 // envelope frames written (handshake excluded)
	bytes  atomic.Uint64 // envelope frame bytes written, headers included
}

// tcpConn is one pipe's write side: the connection plus its persistent gob
// stream. writeMu serialises writers (with the Outbox there is exactly one
// writer goroutine per pipe, so it is uncontended).
type tcpConn struct {
	c       net.Conn
	writeMu sync.Mutex
	buf     bytes.Buffer
	enc     *gob.Encoder
}

func newTCPConn(c net.Conn) *tcpConn {
	tc := &tcpConn{c: c}
	tc.enc = gob.NewEncoder(&tc.buf)
	return tc
}

// maxFrame bounds a frame to keep a malicious or corrupt peer from forcing
// huge allocations.
const maxFrame = 64 << 20

// NewTCP starts a node listening on addr (use "127.0.0.1:0" for an
// ephemeral port; Addr reports the bound address).
func NewTCP(self, addr string) (*TCP, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	t := &TCP{self: self, ln: ln, box: newMailbox(), conns: make(map[string]*tcpConn)}
	t.wg.Add(2)
	go t.acceptLoop()
	go t.pump()
	return t, nil
}

// Addr returns the listener's address, for other peers to dial.
func (t *TCP) Addr() string { return t.ln.Addr().String() }

// Self implements Transport.
func (t *TCP) Self() string { return t.self }

// FramesSent returns the number of envelope frames this node has written to
// its pipes (handshake frames excluded) — the frames-on-the-wire metric of
// the batching benchmarks.
func (t *TCP) FramesSent() uint64 { return t.frames.Load() }

// BytesSent returns the envelope frame bytes written, headers included.
func (t *TCP) BytesSent() uint64 { return t.bytes.Load() }

// SetHandler implements Transport.
func (t *TCP) SetHandler(h Handler) {
	t.handlerMu.Lock()
	defer t.handlerMu.Unlock()
	t.handler = h
}

// SetPipeDownHandler implements PipeNotifier.
func (t *TCP) SetPipeDownHandler(fn func(peer string)) {
	t.handlerMu.Lock()
	defer t.handlerMu.Unlock()
	t.pipeDown = fn
}

// notifyPipeDown reports an involuntarily torn-down pipe.
func (t *TCP) notifyPipeDown(peer string) {
	t.handlerMu.Lock()
	fn := t.pipeDown
	t.handlerMu.Unlock()
	if fn != nil {
		fn(peer)
	}
}

func (t *TCP) pump() {
	defer t.wg.Done()
	for {
		env, ok := t.box.take()
		if !ok {
			return
		}
		t.handlerMu.Lock()
		h := t.handler
		t.handlerMu.Unlock()
		if h != nil {
			h(env)
		}
	}
}

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		c, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			t.serve(c)
		}()
	}
}

// serve performs the inbound handshake and runs the read loop.
func (t *TCP) serve(c net.Conn) {
	name, err := readFrame(c)
	if err != nil {
		c.Close()
		return
	}
	peer := string(name)
	if err := writeFrame(c, []byte(t.self)); err != nil {
		c.Close()
		return
	}
	t.register(peer, c)
	t.readLoop(peer, c)
}

func (t *TCP) register(peer string, c net.Conn) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		c.Close()
		return
	}
	if old := t.conns[peer]; old != nil {
		old.c.Close()
	}
	t.conns[peer] = newTCPConn(c)
}

func (t *TCP) readLoop(peer string, c net.Conn) {
	dec := gob.NewDecoder(&frameReader{r: c})
	for {
		var env msg.Envelope
		if err := dec.Decode(&env); err != nil {
			// I/O or stream corruption: either way the gob stream state is
			// gone, so the pipe comes down with it.
			t.mu.Lock()
			toreDown := false
			if cur := t.conns[peer]; cur != nil && cur.c == c {
				delete(t.conns, peer)
				toreDown = true
			}
			closed := t.closed
			t.mu.Unlock()
			c.Close()
			if toreDown && !closed {
				t.notifyPipeDown(peer)
			}
			return
		}
		if b, ok := env.Payload.(*msg.Batch); ok {
			for _, p := range b.Payloads {
				t.box.put(msg.Envelope{From: env.From, Payload: p})
			}
			continue
		}
		t.box.put(env)
	}
}

// Connect implements Transport: dials addr and handshakes. Re-connecting to
// an already-piped node is a no-op.
func (t *TCP) Connect(node, addr string) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrClosed
	}
	if _, ok := t.conns[node]; ok {
		t.mu.Unlock()
		return nil
	}
	t.mu.Unlock()

	if addr == "" {
		return fmt.Errorf("transport: connect to %s: no address", node)
	}
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("transport: dial %s (%s): %w", node, addr, err)
	}
	if err := writeFrame(c, []byte(t.self)); err != nil {
		c.Close()
		return fmt.Errorf("transport: handshake with %s: %w", node, err)
	}
	nameBytes, err := readFrame(c)
	if err != nil {
		c.Close()
		return fmt.Errorf("transport: handshake with %s: %w", node, err)
	}
	if got := string(nameBytes); got != node {
		c.Close()
		return fmt.Errorf("transport: dialed %s but peer identifies as %s", node, got)
	}
	t.register(node, c)
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		t.readLoop(node, c)
	}()
	return nil
}

// Send implements Transport: the envelope is appended to the connection's
// gob stream and written as one frame.
func (t *TCP) Send(to string, p msg.Payload) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrClosed
	}
	conn := t.conns[to]
	t.mu.Unlock()
	if conn == nil {
		return fmt.Errorf("%w: %s", ErrUnknownPeer, to)
	}
	env := msg.Envelope{From: t.self, Payload: p}
	conn.writeMu.Lock()
	defer conn.writeMu.Unlock()
	// Reserve the length header in the encode buffer so header and body go
	// out in one write.
	conn.buf.Reset()
	conn.buf.Write([]byte{0, 0, 0, 0})
	err := conn.enc.Encode(&env)
	if err == nil {
		frame := conn.buf.Bytes()
		if len(frame)-4 > maxFrame {
			err = errors.New("frame exceeds maxFrame")
		} else {
			binary.BigEndian.PutUint32(frame[:4], uint32(len(frame)-4))
			_, err = conn.c.Write(frame)
		}
	}
	if err != nil {
		// Encode failures also kill the pipe: the encoder's stream state
		// can no longer be trusted to match the remote decoder's.
		t.mu.Lock()
		toreDown := false
		if cur := t.conns[to]; cur == conn {
			delete(t.conns, to)
			toreDown = true
		}
		closed := t.closed
		t.mu.Unlock()
		conn.c.Close()
		if toreDown && !closed {
			t.notifyPipeDown(to)
		}
		return fmt.Errorf("transport: send to %s: %w", to, err)
	}
	t.frames.Add(1)
	t.bytes.Add(uint64(conn.buf.Len()))
	return nil
}

// Disconnect implements Transport.
func (t *TCP) Disconnect(node string) {
	t.mu.Lock()
	conn := t.conns[node]
	delete(t.conns, node)
	t.mu.Unlock()
	if conn != nil {
		conn.c.Close()
	}
}

// Peers implements Transport.
func (t *TCP) Peers() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, len(t.conns))
	for p := range t.conns {
		out = append(out, p)
	}
	return out
}

// Close implements Transport.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	conns := t.conns
	t.conns = make(map[string]*tcpConn)
	t.mu.Unlock()

	t.ln.Close()
	for _, c := range conns {
		c.c.Close()
	}
	t.box.close()
	t.wg.Wait()
	return nil
}

func writeFrame(w io.Writer, b []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(b)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(b)
	return err
}

func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, errors.New("transport: frame too large")
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, err
	}
	return b, nil
}

// frameReader adapts the length-prefixed frame stream to the io.Reader a
// persistent gob.Decoder consumes: frames are concatenated in arrival
// order, preserving the encoder's stream state across messages.
type frameReader struct {
	r         io.Reader
	remaining []byte
}

func (fr *frameReader) Read(p []byte) (int, error) {
	for len(fr.remaining) == 0 {
		frame, err := readFrame(fr.r)
		if err != nil {
			return 0, err
		}
		fr.remaining = frame
	}
	n := copy(p, fr.remaining)
	fr.remaining = fr.remaining[n:]
	return n, nil
}
