package transport

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"codb/internal/msg"
	"codb/internal/wire"
)

// TCP is the socket transport: one listener per node, one TCP connection
// per pipe, versioned binary frames (see internal/wire). The handshake is a
// Hello frame in each direction's first message slot — node name plus
// supported protocol version range — after which both sides exchange
// envelope frames at the negotiated version. Either side may dial; a second
// connection to the same peer replaces the first.
//
// Frames are individually decodable: the header carries the payload type
// tag and a body CRC, and bodies are the internal/msg binary encodings.
// A frame with the wrong magic, version, type or CRC still tears the pipe
// down — the peer layer re-establishes pipes and compensates the
// termination detector for lost messages — but unlike the earlier gob
// streams, no per-connection codec state exists to desynchronise.
//
// Batch envelopes (msg.Batch, produced by the Outbox) are unpacked here on
// receive: the handler sees one envelope per packed payload, in order.
type TCP struct {
	self string
	ln   net.Listener
	box  *mailbox

	mu      sync.Mutex
	conns   map[string]*tcpConn
	dialing map[string]chan struct{} // per-node in-flight Connect gate
	closed  bool
	done    chan struct{} // closed by Close; aborts backoff sleeps and tickers
	wg      sync.WaitGroup
	hbOnce  sync.Once

	handlerMu sync.Mutex
	handler   Handler
	pipeDown  func(peer string)

	frames    atomic.Uint64 // envelope frames written (handshake excluded)
	bytes     atomic.Uint64 // envelope frame bytes written, headers included
	dialFails atomic.Uint64 // outbound dials that failed after every retry
}

// tcpConn is one pipe's write side: the connection, the version negotiated
// in its handshake, and a reusable frame buffer. writeMu serialises writers
// (with the Outbox there is exactly one writer goroutine per pipe, so it is
// uncontended).
type tcpConn struct {
	c       net.Conn
	version byte
	inbound bool // accepted from the peer's dial rather than our own
	writeMu sync.Mutex
	buf     []byte
}

// maxFrame bounds a frame body, mirroring the wire package's limit.
const maxFrame = wire.MaxFrame

// handshakeTimeout bounds the hello exchange on a new connection. Without
// it a silent or stalled remote would park the dialer (and the peer actor
// loop behind it) in a handshake read forever; established connections
// carry no deadline — idle pipes are legal.
const handshakeTimeout = 10 * time.Second

// Outbound dials retry briefly with doubling backoff before giving up:
// runtime join and rejoin race the remote's listener coming up, and a
// connection-refused on loopback fails instantly, so a couple of retries
// absorb the race without meaningfully stalling the caller.
const (
	dialAttempts    = 3
	dialBackoffBase = 25 * time.Millisecond
)

// bufRetain caps the write buffer kept between frames on a pipe. The buffer
// grows to fit whatever frame is in flight (up to maxFrame), but retaining a
// one-off 64 MiB encoding for the lifetime of the pipe would pin that much
// memory per connection; anything beyond this cap is released after the
// write.
const bufRetain = 64 << 10

// hello returns the handshake frame payload this node offers.
func (t *TCP) hello() wire.Hello {
	return wire.Hello{Name: t.self, Min: wire.MinVersion, Max: wire.MaxVersion}
}

// NewTCP starts a node listening on addr (use "127.0.0.1:0" for an
// ephemeral port; Addr reports the bound address).
func NewTCP(self, addr string) (*TCP, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	t := &TCP{
		self:    self,
		ln:      ln,
		box:     newMailbox(),
		conns:   make(map[string]*tcpConn),
		dialing: make(map[string]chan struct{}),
		done:    make(chan struct{}),
	}
	t.wg.Add(2)
	go t.acceptLoop()
	go t.pump()
	return t, nil
}

// Addr returns the listener's address, for other peers to dial.
func (t *TCP) Addr() string { return t.ln.Addr().String() }

// Self implements Transport.
func (t *TCP) Self() string { return t.self }

// FramesSent returns the number of envelope frames this node has written to
// its pipes (handshake frames excluded) — the frames-on-the-wire metric of
// the batching benchmarks.
func (t *TCP) FramesSent() uint64 { return t.frames.Load() }

// BytesSent returns the envelope frame bytes written, headers included.
func (t *TCP) BytesSent() uint64 { return t.bytes.Load() }

// SetHandler implements Transport.
func (t *TCP) SetHandler(h Handler) {
	t.handlerMu.Lock()
	defer t.handlerMu.Unlock()
	t.handler = h
}

// SetPipeDownHandler implements PipeNotifier.
func (t *TCP) SetPipeDownHandler(fn func(peer string)) {
	t.handlerMu.Lock()
	defer t.handlerMu.Unlock()
	t.pipeDown = fn
}

// notifyPipeDown reports an involuntarily torn-down pipe.
func (t *TCP) notifyPipeDown(peer string) {
	t.handlerMu.Lock()
	fn := t.pipeDown
	t.handlerMu.Unlock()
	if fn != nil {
		fn(peer)
	}
}

func (t *TCP) pump() {
	defer t.wg.Done()
	for {
		env, ok := t.box.take()
		if !ok {
			return
		}
		t.handlerMu.Lock()
		h := t.handler
		t.handlerMu.Unlock()
		if h != nil {
			h(env)
		}
	}
}

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		c, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			t.serve(c)
		}()
	}
}

// serve performs the inbound handshake — read the dialer's hello, negotiate
// a version, answer with ours — and runs the read loop. A hello we cannot
// parse or a version range we cannot meet closes the connection before a
// pipe ever exists, so no pipe-down fires.
func (t *TCP) serve(c net.Conn) {
	c.SetDeadline(time.Now().Add(handshakeTimeout))
	theirs, err := wire.ReadHello(c)
	if err != nil {
		c.Close()
		return
	}
	version, err := wire.Negotiate(t.hello(), theirs)
	if err != nil {
		c.Close()
		return
	}
	if err := wire.WriteHello(c, t.hello()); err != nil {
		c.Close()
		return
	}
	c.SetDeadline(time.Time{})
	if !t.register(theirs.Name, c, version, true) {
		return // lost a simultaneous-open tie-break; register closed c
	}
	t.readLoop(theirs.Name, c, version)
}

// register installs c as the pipe to peer and reports whether it was kept.
//
// When a conn for the peer already exists in the OPPOSITE direction, the two
// ends dialed each other simultaneously (both redialing after a heal is the
// common case). Naive last-write-wins is a shootout: each end replaces and
// closes a different socket, the close each inflicts tears down the conn the
// other end kept, both pipes die, and the paced redials cross again one
// timeout later. Instead both ends apply the same tie-break — keep the
// socket initiated by the lexicographically smaller name — so a crossed pair
// deterministically converges on one surviving socket with no pipe-down.
// A same-direction duplicate is a genuine reconnect and replaces as before.
func (t *TCP) register(peer string, c net.Conn, version byte, inbound bool) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		c.Close()
		return false
	}
	if old := t.conns[peer]; old != nil {
		loses := t.self > peer // our own dial loses when our name is larger
		if inbound {
			loses = peer > t.self
		}
		if old.inbound != inbound && loses {
			c.Close()
			return false
		}
		old.c.Close()
	}
	t.conns[peer] = &tcpConn{c: c, version: version, inbound: inbound}
	return true
}

// dropConn removes the pipe for peer if it is still connection c, closes c,
// and reports the pipe down.
func (t *TCP) dropConn(peer string, c net.Conn) {
	t.mu.Lock()
	toreDown := false
	if cur := t.conns[peer]; cur != nil && cur.c == c {
		delete(t.conns, peer)
		toreDown = true
	}
	closed := t.closed
	t.mu.Unlock()
	c.Close()
	if toreDown && !closed {
		t.notifyPipeDown(peer)
	}
}

func (t *TCP) readLoop(peer string, c net.Conn, version byte) {
	for {
		h, body, err := wire.ReadFrame(c)
		if err == nil {
			switch {
			case h.Version != version:
				err = fmt.Errorf("%w: frame version %d, negotiated %d",
					wire.ErrBadVersion, h.Version, version)
			case h.Type < 0x10:
				// Wire-layer frame after the handshake (a stray hello, or a
				// type from a future protocol revision).
				err = fmt.Errorf("wire: unexpected frame type 0x%02x", h.Type)
			}
		}
		var env msg.Envelope
		if err == nil {
			env, err = msg.DecodeEnvelope(msg.Tag(h.Type), body)
		}
		if err != nil {
			// I/O failure or protocol violation: either way the pipe comes
			// down, and the peer layer compensates for lost messages.
			t.dropConn(peer, c)
			return
		}
		if b, ok := env.Payload.(*msg.Batch); ok {
			for _, p := range b.Payloads {
				t.box.put(msg.Envelope{From: env.From, Payload: p})
			}
			continue
		}
		t.box.put(env)
	}
}

// dial establishes and handshakes an outbound connection, retrying briefly
// with backoff; every attempt failing counts one DialFailures increment. The
// backoff sleep aborts when the transport closes, so Close never waits out a
// retry schedule.
func (t *TCP) dial(addr string) (c net.Conn, theirs wire.Hello, version byte, err error) {
	for attempt := 1; ; attempt++ {
		c, theirs, version, err = t.dialOnce(addr)
		if err == nil {
			return c, theirs, version, nil
		}
		if attempt >= dialAttempts {
			t.dialFails.Add(1)
			return nil, wire.Hello{}, 0, err
		}
		backoff := time.NewTimer(dialBackoffBase << (attempt - 1))
		select {
		case <-backoff.C:
		case <-t.done:
			backoff.Stop()
			return nil, wire.Hello{}, 0, ErrClosed
		}
	}
}

func (t *TCP) dialOnce(addr string) (net.Conn, wire.Hello, byte, error) {
	c, err := net.DialTimeout("tcp", addr, handshakeTimeout)
	if err != nil {
		return nil, wire.Hello{}, 0, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	c.SetDeadline(time.Now().Add(handshakeTimeout))
	if err := wire.WriteHello(c, t.hello()); err != nil {
		c.Close()
		return nil, wire.Hello{}, 0, fmt.Errorf("transport: handshake with %s: %w", addr, err)
	}
	theirs, err := wire.ReadHello(c)
	if err != nil {
		c.Close()
		return nil, wire.Hello{}, 0, fmt.Errorf("transport: handshake with %s: %w", addr, err)
	}
	version, err := wire.Negotiate(t.hello(), theirs)
	if err != nil {
		c.Close()
		return nil, wire.Hello{}, 0, fmt.Errorf("transport: handshake with %s: %w", addr, err)
	}
	c.SetDeadline(time.Time{})
	return c, theirs, version, nil
}

// Connect implements Transport: dials addr (with retry/backoff) and
// handshakes. Re-connecting to an already-piped node is a no-op. In-flight
// dials are serialised per node: when two callers race a Connect to the same
// peer, one dials and the other waits for the outcome, so two sockets are
// never registered back to back (which would silently close the first while
// its read loop was live).
func (t *TCP) Connect(node, addr string) error {
	for {
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			return ErrClosed
		}
		if _, ok := t.conns[node]; ok {
			t.mu.Unlock()
			return nil
		}
		gate := t.dialing[node]
		if gate == nil {
			gate = make(chan struct{})
			t.dialing[node] = gate
			t.mu.Unlock()
			err := t.dialAndRegister(node, addr)
			t.mu.Lock()
			delete(t.dialing, node)
			t.mu.Unlock()
			close(gate)
			return err
		}
		t.mu.Unlock()
		// Another Connect to this node is mid-dial: wait for its outcome and
		// re-check instead of racing a second socket into register.
		select {
		case <-gate:
		case <-t.done:
			return ErrClosed
		}
	}
}

// dialAndRegister is the single-flight body of Connect: the caller holds the
// per-node dialing gate.
func (t *TCP) dialAndRegister(node, addr string) error {
	if addr == "" {
		return fmt.Errorf("transport: connect to %s: no address", node)
	}
	c, theirs, version, err := t.dial(addr)
	if err != nil {
		return fmt.Errorf("transport: connect to %s: %w", node, err)
	}
	if theirs.Name != node {
		c.Close()
		return fmt.Errorf("transport: dialed %s but peer identifies as %s", node, theirs.Name)
	}
	if !t.register(node, c, version, false) {
		// Lost a simultaneous-open tie-break: the peer's own dial to us
		// already registered, and both ends keep that socket. The pipe is up.
		return nil
	}
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		t.readLoop(node, c, version)
	}()
	return nil
}

// ConnectAddr implements AddrDialer: it dials an address whose node name is
// not known in advance (the first hop of a runtime join) and learns the
// name from the remote's hello.
func (t *TCP) ConnectAddr(addr string) (string, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return "", ErrClosed
	}
	t.mu.Unlock()
	c, theirs, version, err := t.dial(addr)
	if err != nil {
		return "", err
	}
	if theirs.Name == t.self {
		c.Close()
		return "", fmt.Errorf("transport: %s dialed itself at %s", t.self, addr)
	}
	if !t.register(theirs.Name, c, version, false) {
		return theirs.Name, nil // simultaneous open resolved to the peer's socket
	}
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		t.readLoop(theirs.Name, c, version)
	}()
	return theirs.Name, nil
}

// DialFailures counts outbound dials that failed after every retry — the
// observable for "no dials to departed addresses": a healthy dynamic
// network tombstones departed peers instead of re-dialing them, so churn
// should leave this at zero.
func (t *TCP) DialFailures() uint64 { return t.dialFails.Load() }

// Send implements Transport: the envelope is encoded into one frame —
// header at the negotiated version, payload tag, CRC — and written in a
// single call.
func (t *TCP) Send(to string, p msg.Payload) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrClosed
	}
	conn := t.conns[to]
	t.mu.Unlock()
	if conn == nil {
		return fmt.Errorf("%w: %s", ErrUnknownPeer, to)
	}
	env := msg.Envelope{From: t.self, Payload: p}
	conn.writeMu.Lock()
	defer conn.writeMu.Unlock()
	return t.writeEnvelope(to, conn, env)
}

// writeEnvelope encodes env into one frame and writes it on conn; the caller
// holds conn.writeMu. Encode-side failures — an unencodable payload, or a
// body past the frame limit — return before anything touches the socket:
// zero bytes reached the wire, the remote reader is still frame-aligned, and
// the pipe stays up. Only a failed socket write tears the pipe down, because
// a partial write leaves the remote mid-frame.
func (t *TCP) writeEnvelope(to string, conn *tcpConn, env msg.Envelope) error {
	// Reserve the frame header in the reused buffer so header and body go
	// out in one write.
	if cap(conn.buf) < wire.HeaderLen {
		conn.buf = make([]byte, wire.HeaderLen, 4096)
	}
	frame, tag, err := msg.AppendEnvelope(conn.buf[:wire.HeaderLen], env)
	if err == nil && len(frame)-wire.HeaderLen > maxFrame {
		err = wire.ErrFrameTooBig
	}
	if err != nil {
		return fmt.Errorf("transport: send to %s: %w", to, err)
	}
	conn.buf = frame
	wire.PutHeader(frame[:wire.HeaderLen], conn.version, byte(tag), frame[wire.HeaderLen:])
	if _, err := conn.c.Write(frame); err != nil {
		t.dropConn(to, conn.c)
		return fmt.Errorf("transport: send to %s: %w", to, err)
	}
	if cap(conn.buf) > bufRetain {
		conn.buf = make([]byte, 0, bufRetain)
	}
	t.frames.Add(1)
	t.bytes.Add(uint64(len(frame)))
	return nil
}

// StartHeartbeats begins emitting one msg.Heartbeat frame per interval on
// every pipe whose negotiated protocol version is at least wire.V2 — V1
// peers predate the heartbeat tag and must never see one. Heartbeats are
// control traffic below the peer layer: they reset the receiver's suspicion
// timer but carry no session obligations and are not deficit-counted.
// Subsequent calls are no-ops; the loop stops when the transport closes.
func (t *TCP) StartHeartbeats(interval time.Duration) {
	if interval <= 0 {
		return
	}
	t.hbOnce.Do(func() {
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			return
		}
		t.wg.Add(1)
		t.mu.Unlock()
		go t.heartbeatLoop(interval)
	})
}

func (t *TCP) heartbeatLoop(interval time.Duration) {
	defer t.wg.Done()
	tick := time.NewTicker(interval)
	defer tick.Stop()
	var seq uint64
	for {
		select {
		case <-t.done:
			return
		case <-tick.C:
		}
		seq++
		t.mu.Lock()
		targets := make(map[string]*tcpConn, len(t.conns))
		for name, conn := range t.conns {
			if conn.version >= wire.V2 {
				targets[name] = conn
			}
		}
		t.mu.Unlock()
		for name, conn := range targets {
			env := msg.Envelope{From: t.self, Payload: &msg.Heartbeat{Seq: seq}}
			conn.writeMu.Lock()
			// A write failure already dropped the conn; nothing to do here —
			// the pipe-down notification reaches the peer layer on its own.
			_ = t.writeEnvelope(name, conn, env)
			conn.writeMu.Unlock()
		}
	}
}

// PeerVersion reports the wire protocol version negotiated with a piped
// peer; ok is false when no live pipe to the node exists. The peer layer
// consults it before sending V2-only payloads (the pull-propagation
// family): an unknown or V1 pipe degrades the link to push.
func (t *TCP) PeerVersion(node string) (version byte, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	conn := t.conns[node]
	if conn == nil {
		return 0, false
	}
	return conn.version, true
}

// Disconnect implements Transport.
func (t *TCP) Disconnect(node string) {
	t.mu.Lock()
	conn := t.conns[node]
	delete(t.conns, node)
	t.mu.Unlock()
	if conn != nil {
		conn.c.Close()
	}
}

// Peers implements Transport.
func (t *TCP) Peers() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, len(t.conns))
	for p := range t.conns {
		out = append(out, p)
	}
	return out
}

// Close implements Transport.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	close(t.done)
	conns := t.conns
	t.conns = make(map[string]*tcpConn)
	t.mu.Unlock()

	t.ln.Close()
	for _, c := range conns {
		c.c.Close()
	}
	t.box.close()
	t.wg.Wait()
	return nil
}
