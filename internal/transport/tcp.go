package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"codb/internal/msg"
)

// TCP is the socket transport: one listener per node, one TCP connection
// per pipe, length-prefixed gob frames. The handshake is a name frame in
// each direction's first message slot, after which both sides exchange
// envelopes. Either side may dial; a second connection to the same peer
// replaces the first.
type TCP struct {
	self string
	ln   net.Listener
	box  *mailbox

	mu     sync.Mutex
	conns  map[string]*tcpConn
	closed bool
	wg     sync.WaitGroup

	handlerMu sync.Mutex
	handler   Handler
}

type tcpConn struct {
	c       net.Conn
	writeMu sync.Mutex
}

// maxFrame bounds a frame to keep a malicious or corrupt peer from forcing
// huge allocations.
const maxFrame = 64 << 20

// NewTCP starts a node listening on addr (use "127.0.0.1:0" for an
// ephemeral port; Addr reports the bound address).
func NewTCP(self, addr string) (*TCP, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	t := &TCP{self: self, ln: ln, box: newMailbox(), conns: make(map[string]*tcpConn)}
	t.wg.Add(2)
	go t.acceptLoop()
	go t.pump()
	return t, nil
}

// Addr returns the listener's address, for other peers to dial.
func (t *TCP) Addr() string { return t.ln.Addr().String() }

// Self implements Transport.
func (t *TCP) Self() string { return t.self }

// SetHandler implements Transport.
func (t *TCP) SetHandler(h Handler) {
	t.handlerMu.Lock()
	defer t.handlerMu.Unlock()
	t.handler = h
}

func (t *TCP) pump() {
	defer t.wg.Done()
	for {
		env, ok := t.box.take()
		if !ok {
			return
		}
		t.handlerMu.Lock()
		h := t.handler
		t.handlerMu.Unlock()
		if h != nil {
			h(env)
		}
	}
}

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		c, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			t.serve(c)
		}()
	}
}

// serve performs the inbound handshake and runs the read loop.
func (t *TCP) serve(c net.Conn) {
	name, err := readFrame(c)
	if err != nil {
		c.Close()
		return
	}
	peer := string(name)
	if err := writeFrame(c, []byte(t.self)); err != nil {
		c.Close()
		return
	}
	t.register(peer, c)
	t.readLoop(peer, c)
}

func (t *TCP) register(peer string, c net.Conn) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		c.Close()
		return
	}
	if old := t.conns[peer]; old != nil {
		old.c.Close()
	}
	t.conns[peer] = &tcpConn{c: c}
}

func (t *TCP) readLoop(peer string, c net.Conn) {
	for {
		frame, err := readFrame(c)
		if err != nil {
			t.mu.Lock()
			if cur := t.conns[peer]; cur != nil && cur.c == c {
				delete(t.conns, peer)
			}
			t.mu.Unlock()
			c.Close()
			return
		}
		env, err := msg.Decode(frame)
		if err != nil {
			continue // skip undecodable frame, keep the pipe
		}
		t.box.put(env)
	}
}

// Connect implements Transport: dials addr and handshakes. Re-connecting to
// an already-piped node is a no-op.
func (t *TCP) Connect(node, addr string) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrClosed
	}
	if _, ok := t.conns[node]; ok {
		t.mu.Unlock()
		return nil
	}
	t.mu.Unlock()

	if addr == "" {
		return fmt.Errorf("transport: connect to %s: no address", node)
	}
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("transport: dial %s (%s): %w", node, addr, err)
	}
	if err := writeFrame(c, []byte(t.self)); err != nil {
		c.Close()
		return fmt.Errorf("transport: handshake with %s: %w", node, err)
	}
	nameBytes, err := readFrame(c)
	if err != nil {
		c.Close()
		return fmt.Errorf("transport: handshake with %s: %w", node, err)
	}
	if got := string(nameBytes); got != node {
		c.Close()
		return fmt.Errorf("transport: dialed %s but peer identifies as %s", node, got)
	}
	t.register(node, c)
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		t.readLoop(node, c)
	}()
	return nil
}

// Send implements Transport.
func (t *TCP) Send(to string, p msg.Payload) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrClosed
	}
	conn := t.conns[to]
	t.mu.Unlock()
	if conn == nil {
		return fmt.Errorf("%w: %s", ErrUnknownPeer, to)
	}
	frame, err := msg.Encode(msg.Envelope{From: t.self, Payload: p})
	if err != nil {
		return err
	}
	conn.writeMu.Lock()
	defer conn.writeMu.Unlock()
	if err := writeFrame(conn.c, frame); err != nil {
		t.mu.Lock()
		if cur := t.conns[to]; cur == conn {
			delete(t.conns, to)
		}
		t.mu.Unlock()
		conn.c.Close()
		return fmt.Errorf("transport: send to %s: %w", to, err)
	}
	return nil
}

// Disconnect implements Transport.
func (t *TCP) Disconnect(node string) {
	t.mu.Lock()
	conn := t.conns[node]
	delete(t.conns, node)
	t.mu.Unlock()
	if conn != nil {
		conn.c.Close()
	}
}

// Peers implements Transport.
func (t *TCP) Peers() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, len(t.conns))
	for p := range t.conns {
		out = append(out, p)
	}
	return out
}

// Close implements Transport.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	conns := t.conns
	t.conns = make(map[string]*tcpConn)
	t.mu.Unlock()

	t.ln.Close()
	for _, c := range conns {
		c.c.Close()
	}
	t.box.close()
	t.wg.Wait()
	return nil
}

func writeFrame(w io.Writer, b []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(b)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(b)
	return err
}

func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, errors.New("transport: frame too large")
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, err
	}
	return b, nil
}
