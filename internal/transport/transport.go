// Package transport provides the peer-to-peer substrate coDB builds on —
// the role JXTA plays in the paper: peer identity, pipes (point-to-point
// message links), message delivery, and decentralised peer discovery.
//
// Two implementations share one interface: Bus (in-process, for simulating
// whole networks inside one OS process, as tests and benchmarks do) and TCP
// (versioned binary frames over real sockets — see internal/wire — for
// multi-process deployments). Peer logic is identical over both.
//
// Outbox wraps either implementation in an asynchronous per-destination
// outbound pipeline: Send becomes an enqueue, one writer goroutine per pipe
// drains its queue, and queued payloads for the same destination are
// coalesced into msg.Batch envelopes (one frame on the wire). See the
// Outbox type for the flush and backpressure policy. Receiving transports
// unpack batches before delivery, so handlers always see one envelope per
// payload, in per-sender FIFO order, whether or not the sender batches.
package transport

import (
	"errors"
	"sync"
	"time"

	"codb/internal/msg"
)

// Handler consumes inbound envelopes. Implementations call it sequentially
// per receiving node (one delivery goroutine per node), so peer actors can
// treat it as their serial event source.
type Handler func(env msg.Envelope)

// Transport is a node's connection to the network.
type Transport interface {
	// Self returns this node's name.
	Self() string
	// SetHandler installs the inbound message consumer. Must be called
	// before the first Send/Connect.
	SetHandler(h Handler)
	// Connect establishes (or re-uses) a pipe to the named peer. For TCP,
	// addr is the peer's listen address; the Bus resolves names itself
	// and ignores addr.
	Connect(node, addr string) error
	// Send delivers an envelope payload to a connected peer.
	Send(to string, p msg.Payload) error
	// Disconnect drops the pipe to the named peer (no-op if absent).
	Disconnect(node string)
	// Peers lists currently connected peers (the node's pipes).
	Peers() []string
	// Close tears down all pipes and stops delivery.
	Close() error
}

// AddrDialer is implemented by transports that can establish a pipe to an
// address without knowing the remote's name in advance — the first dial of
// a runtime join, where the joiner knows only the admitting peer's address.
// The remote's name is learned from its handshake and returned.
type AddrDialer interface {
	ConnectAddr(addr string) (node string, err error)
}

// PipeNotifier is implemented by transports that can asynchronously report
// a pipe failure (e.g. TCP detecting a dead connection in its read loop).
// Asynchronous senders need this: a write into a connection the far side
// has already abandoned can succeed at the OS level, so send errors alone
// do not account for every lost message. The handler is invoked from a
// transport goroutine once per torn-down pipe (deliberate Disconnect and
// Close excluded) and must not block or call back into the transport
// synchronously.
type PipeNotifier interface {
	SetPipeDownHandler(func(peer string))
}

// HeartbeatStarter is implemented by transports that can emit periodic
// liveness frames (msg.Heartbeat) on their pipes. The peer layer starts
// heartbeats when its suspicion failure detector is enabled; transports
// without heartbeats (e.g. the in-process Bus, whose pipes cannot silently
// partition) simply do not implement the interface.
type HeartbeatStarter interface {
	StartHeartbeats(interval time.Duration)
}

// ErrUnknownPeer is returned by Send when no pipe to the peer exists.
var ErrUnknownPeer = errors.New("transport: unknown peer")

// ErrClosed is returned after Close.
var ErrClosed = errors.New("transport: closed")

// mailbox is an unbounded FIFO queue with a blocking receiver, so that
// senders never block (preventing peer-to-peer deadlock) while each
// receiver processes sequentially.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []msg.Envelope
	closed bool
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// put enqueues; returns false when the mailbox is closed.
func (m *mailbox) put(e msg.Envelope) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return false
	}
	m.items = append(m.items, e)
	m.cond.Signal()
	return true
}

// take blocks until an item arrives or the mailbox closes.
func (m *mailbox) take() (msg.Envelope, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.items) == 0 && !m.closed {
		m.cond.Wait()
	}
	if len(m.items) == 0 {
		return msg.Envelope{}, false
	}
	e := m.items[0]
	m.items = m.items[1:]
	return e, true
}

func (m *mailbox) close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	m.cond.Broadcast()
}
