package transport

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"codb/internal/msg"
)

// fakeTransport is a controllable Transport for outbox unit tests: sends
// can be blocked (to force queue build-up) or failed per destination.
type fakeTransport struct {
	mu      sync.Mutex
	peers   map[string]bool
	sent    []msg.Payload
	release chan struct{} // non-nil: every Send waits for one receive
	started chan struct{} // signalled (non-blocking) when a Send begins
	failTo  map[string]error
	closed  bool
}

func newFakeTransport() *fakeTransport {
	return &fakeTransport{
		peers:   make(map[string]bool),
		failTo:  make(map[string]error),
		started: make(chan struct{}, 64),
	}
}

func (f *fakeTransport) Self() string         { return "self" }
func (f *fakeTransport) SetHandler(h Handler) {}
func (f *fakeTransport) Disconnect(node string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.peers, node)
}
func (f *fakeTransport) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.closed = true
	return nil
}
func (f *fakeTransport) Connect(node, addr string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.peers[node] = true
	return nil
}
func (f *fakeTransport) Peers() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, 0, len(f.peers))
	for p := range f.peers {
		out = append(out, p)
	}
	return out
}
func (f *fakeTransport) Send(to string, p msg.Payload) error {
	f.mu.Lock()
	rel := f.release
	err := f.failTo[to]
	f.mu.Unlock()
	select {
	case f.started <- struct{}{}:
	default:
	}
	if rel != nil {
		<-rel
	}
	if err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.sent = append(f.sent, p)
	return nil
}

func (f *fakeTransport) sentCopy() []msg.Payload {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]msg.Payload(nil), f.sent...)
}

// dropRecorder collects OnDrop callbacks.
type dropRecorder struct {
	mu    sync.Mutex
	drops []msg.Payload
}

func (d *dropRecorder) onDrop(to string, p msg.Payload, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.drops = append(d.drops, p)
}

func (d *dropRecorder) count() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.drops)
}

// TestOutboxCoalescesWhileWriterBusy: payloads enqueued while the writer is
// blocked on a frame come out packed into one Batch, in order.
func TestOutboxCoalescesWhileWriterBusy(t *testing.T) {
	ft := newFakeTransport()
	ft.release = make(chan struct{})
	ob := NewOutbox(ft, OutboxOptions{})
	if err := ob.Connect("b", ""); err != nil {
		t.Fatal(err)
	}
	if err := ob.Send("b", &msg.SessionAck{SID: "s", N: 0}); err != nil {
		t.Fatal(err)
	}
	// Wait until the writer has dequeued payload 0 and is parked inside
	// ft.Send, then queue three more — deterministically coalesced into
	// the next frame.
	<-ft.started
	for i := 1; i <= 3; i++ {
		if err := ob.Send("b", &msg.SessionAck{SID: "s", N: i}); err != nil {
			t.Fatal(err)
		}
	}
	ft.release <- struct{}{} // release payload 0
	ft.release <- struct{}{} // release the batch frame
	ob.Flush()
	sent := ft.sentCopy()
	if len(sent) != 2 {
		t.Fatalf("frames = %d, want 2 (%v)", len(sent), sent)
	}
	batch, ok := sent[1].(*msg.Batch)
	if !ok {
		t.Fatalf("second frame = %T, want *msg.Batch", sent[1])
	}
	if len(batch.Payloads) != 3 {
		t.Fatalf("batch size = %d, want 3", len(batch.Payloads))
	}
	for i, p := range batch.Payloads {
		if p.(*msg.SessionAck).N != i+1 {
			t.Errorf("batch[%d] = %+v, order broken", i, p)
		}
	}
	st := ob.Stats()
	if st.Frames != 2 || st.Payloads != 4 || st.Batches != 1 {
		t.Errorf("stats = %+v", st)
	}
	ob.Close()
}

// TestOutboxDisconnectDropsQueued: Disconnect while frames are queued
// reports every queued payload through OnDrop (the peer layer turns these
// into CompensateLost calls).
func TestOutboxDisconnectDropsQueued(t *testing.T) {
	ft := newFakeTransport()
	ft.release = make(chan struct{})
	var rec dropRecorder
	ob := NewOutbox(ft, OutboxOptions{OnDrop: rec.onDrop})
	ob.Connect("b", "")
	ob.Send("b", &msg.SessionAck{SID: "s", N: 0}) // writer blocks on this one
	<-ft.started                                  // writer parked in Send with payload 0
	for i := 1; i <= 3; i++ {
		ob.Send("b", &msg.SessionData{SID: "s", RuleID: fmt.Sprint(i)})
	}
	ob.Disconnect("b")
	if got := rec.count(); got != 3 {
		t.Fatalf("drops = %d, want the 3 queued payloads", got)
	}
	close(ft.release)
	ob.Close()
}

// TestOutboxSendFailureReportsDrops: a write error fails the whole queue;
// the failed batch and everything behind it surface through OnDrop.
func TestOutboxSendFailureReportsDrops(t *testing.T) {
	ft := newFakeTransport()
	var rec dropRecorder
	ob := NewOutbox(ft, OutboxOptions{OnDrop: rec.onDrop})
	ob.Connect("b", "")
	ft.mu.Lock()
	ft.failTo["b"] = errors.New("boom")
	ft.mu.Unlock()
	if err := ob.Send("b", &msg.SessionRequest{SID: "s"}); err != nil {
		t.Fatalf("enqueue should succeed, delivery fails later: %v", err)
	}
	waitFor(t, func() bool { return rec.count() == 1 })
	ob.Close()
}

// TestOutboxCloseFlushes: Close drains queued frames instead of dropping
// them, so completion floods still reach live peers during shutdown.
func TestOutboxCloseFlushes(t *testing.T) {
	ft := newFakeTransport()
	ft.release = make(chan struct{}, 16)
	var rec dropRecorder
	ob := NewOutbox(ft, OutboxOptions{OnDrop: rec.onDrop})
	ob.Connect("b", "")
	for i := 0; i < 5; i++ {
		ob.Send("b", &msg.SessionAck{SID: "s", N: i})
	}
	for i := 0; i < 16; i++ {
		ft.release <- struct{}{}
	}
	if err := ob.Close(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, p := range ft.sentCopy() {
		if b, ok := p.(*msg.Batch); ok {
			total += len(b.Payloads)
		} else {
			total++
		}
	}
	if total != 5 {
		t.Errorf("delivered %d of 5 payloads across Close", total)
	}
	if rec.count() != 0 {
		t.Errorf("graceful close dropped %d payloads", rec.count())
	}
	if err := ob.Send("b", &msg.SessionAck{}); err != ErrClosed {
		t.Errorf("send after close = %v", err)
	}
}

// TestOutboxBackpressure: a full queue blocks Send until the writer frees
// space.
func TestOutboxBackpressure(t *testing.T) {
	ft := newFakeTransport()
	ft.release = make(chan struct{})
	ob := NewOutbox(ft, OutboxOptions{QueueLimit: 2, BatchPayloads: 1})
	ob.Connect("b", "")
	ob.Send("b", &msg.SessionAck{N: 0}) // writer takes it, blocks in Send
	<-ft.started
	ob.Send("b", &msg.SessionAck{N: 1})
	ob.Send("b", &msg.SessionAck{N: 2}) // queue now at limit 2
	blocked := make(chan struct{})
	go func() {
		ob.Send("b", &msg.SessionAck{N: 3})
		close(blocked)
	}()
	select {
	case <-blocked:
		t.Fatal("send into a full queue did not block")
	case <-time.After(20 * time.Millisecond):
	}
	go func() {
		for i := 0; i < 8; i++ {
			ft.release <- struct{}{}
		}
	}()
	select {
	case <-blocked:
	case <-time.After(2 * time.Second):
		t.Fatal("backpressured send never unblocked")
	}
	ob.Flush()
	ob.Close()
}

// TestOutboxSendWithoutPipe: no pipe and no queue is a synchronous error.
func TestOutboxSendWithoutPipe(t *testing.T) {
	ob := NewOutbox(newFakeTransport(), OutboxOptions{})
	if err := ob.Send("ghost", &msg.SessionAck{}); !errors.Is(err, ErrUnknownPeer) {
		t.Errorf("send without pipe = %v", err)
	}
	ob.Close()
}

// TestOutboxOverBusDelivery: end-to-end over the bus, batches unpacked per
// payload at the receiver, order preserved.
func TestOutboxOverBusDelivery(t *testing.T) {
	bus := NewBus()
	a := bus.MustJoin("a")
	b := bus.MustJoin("b")
	var got collector
	b.SetHandler(got.handler)
	ob := NewOutbox(a, OutboxOptions{})
	if err := ob.Connect("b", ""); err != nil {
		t.Fatal(err)
	}
	const n = 300
	for i := 0; i < n; i++ {
		if err := ob.Send("b", &msg.SessionAck{SID: "s", N: i}); err != nil {
			t.Fatal(err)
		}
	}
	envs := got.wait(t, n)
	for i, e := range envs {
		if e.Payload.(*msg.SessionAck).N != i {
			t.Fatalf("out of order at %d: %d", i, e.Payload.(*msg.SessionAck).N)
		}
		if _, isBatch := e.Payload.(*msg.Batch); isBatch {
			t.Fatal("batch leaked through to the handler")
		}
	}
	ob.Close()
}

// TestTCPOutboxEndToEnd: the full pipeline over real sockets, with frame
// coalescing visible in the sender's counters.
func TestTCPOutboxEndToEnd(t *testing.T) {
	a, err := NewTCP("a", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewTCP("b", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	var got collector
	b.SetHandler(got.handler)
	ob := NewOutbox(a, OutboxOptions{})
	defer ob.Close()
	if err := ob.Connect("b", b.Addr()); err != nil {
		t.Fatal(err)
	}
	const n = 500
	for i := 0; i < n; i++ {
		if err := ob.Send("b", &msg.SessionAck{SID: "s", N: i}); err != nil {
			t.Fatal(err)
		}
	}
	envs := got.wait(t, n)
	for i, e := range envs {
		if e.Payload.(*msg.SessionAck).N != i {
			t.Fatalf("out of order at %d", i)
		}
	}
	ob.Flush()
	if frames := a.FramesSent(); frames > n {
		t.Errorf("frames = %d for %d payloads (no coalescing?)", frames, n)
	}
}

// TestTCPPipeDownNotification: killing the remote side fires the pipe-down
// handler exactly once with the peer's name.
func TestTCPPipeDownNotification(t *testing.T) {
	a, _ := NewTCP("a", "127.0.0.1:0")
	defer a.Close()
	b, _ := NewTCP("b", "127.0.0.1:0")
	downs := make(chan string, 4)
	a.SetPipeDownHandler(func(peer string) { downs <- peer })
	if err := a.Connect("b", b.Addr()); err != nil {
		t.Fatal(err)
	}
	b.Close()
	select {
	case peer := <-downs:
		if peer != "b" {
			t.Errorf("pipe down for %q", peer)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pipe-down never fired")
	}
	// Deliberate Disconnect must NOT fire the handler.
	c, _ := NewTCP("c", "127.0.0.1:0")
	defer c.Close()
	if err := a.Connect("c", c.Addr()); err != nil {
		t.Fatal(err)
	}
	a.Disconnect("c")
	select {
	case peer := <-downs:
		t.Errorf("deliberate disconnect notified pipe-down for %q", peer)
	case <-time.After(50 * time.Millisecond):
	}
}

// TestTCPConcurrentConnectSendClose is the race-detector stress test of the
// issue: many goroutines hammer Connect/Send/Disconnect while nodes close
// underneath them. It asserts only absence of data races, panics and
// deadlocks — errors are expected and ignored.
func TestTCPConcurrentConnectSendClose(t *testing.T) {
	const nodes = 4
	trs := make([]*TCP, nodes)
	addrs := make([]string, nodes)
	for i := range trs {
		tr, err := NewTCP(fmt.Sprintf("n%d", i), "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		tr.SetHandler(func(env msg.Envelope) {})
		trs[i] = tr
		addrs[i] = tr.Addr()
	}
	var wg sync.WaitGroup
	for i := range trs {
		wg.Add(1)
		go func(self int) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(int64(self)))
			ob := NewOutbox(trs[self], OutboxOptions{})
			for iter := 0; iter < 300; iter++ {
				peer := rnd.Intn(nodes)
				if peer == self {
					continue
				}
				name := fmt.Sprintf("n%d", peer)
				switch rnd.Intn(5) {
				case 0:
					ob.Connect(name, addrs[peer])
				case 1, 2, 3:
					ob.Send(name, &msg.SessionAck{SID: "race", N: iter})
				case 4:
					ob.Disconnect(name)
				}
			}
			ob.Close()
		}(i)
	}
	wg.Wait()
}

// waitFor polls until cond holds (5s timeout).
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestOutboxCloseTimeoutReportsStalled: a pipe that stops making progress
// cannot pin Close forever; past CloseTimeout the undrained payloads are
// reported through OnDrop and Close completes once the writer unblocks.
func TestOutboxCloseTimeoutReportsStalled(t *testing.T) {
	ft := newFakeTransport()
	ft.release = make(chan struct{})
	var rec dropRecorder
	ob := NewOutbox(ft, OutboxOptions{OnDrop: rec.onDrop, CloseTimeout: 50 * time.Millisecond})
	ob.Connect("b", "")
	ob.Send("b", &msg.SessionAck{N: 0}) // writer parks inside ft.Send
	<-ft.started
	ob.Send("b", &msg.SessionAck{N: 1})
	ob.Send("b", &msg.SessionAck{N: 2})
	closed := make(chan error, 1)
	go func() { closed <- ob.Close() }()
	// The two queued payloads must surface as drops once the drain times
	// out, even though the writer is still stuck.
	waitFor(t, func() bool { return rec.count() == 2 })
	close(ft.release) // unstick the writer; its in-flight payload completes
	if err := <-closed; err != nil {
		t.Fatal(err)
	}
}
