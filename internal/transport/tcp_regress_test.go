package transport

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"codb/internal/msg"
	"codb/internal/wire"
)

// An encode-side Send failure must not tear down the pipe: zero bytes
// reached the wire, so the remote reader is still frame-aligned and the
// connection is perfectly healthy. A regression here turns one oversized
// payload into a pipe-down, a spurious loss compensation, and a redial.
func TestTCPSendOversizedPayloadKeepsPipe(t *testing.T) {
	a, _ := NewTCP("a", "127.0.0.1:0")
	defer a.Close()
	b, _ := NewTCP("b", "127.0.0.1:0")
	defer b.Close()
	var got collector
	b.SetHandler(got.handler)
	var downs atomic.Uint64
	a.SetPipeDownHandler(func(string) { downs.Add(1) })
	if err := a.Connect("b", b.Addr()); err != nil {
		t.Fatal(err)
	}

	huge := &msg.RulesBroadcast{Version: 1, Text: strings.Repeat("x", maxFrame+16)}
	err := a.Send("b", huge)
	if !errors.Is(err, wire.ErrFrameTooBig) {
		t.Fatalf("oversized send = %v, want ErrFrameTooBig", err)
	}
	if n := a.FramesSent(); n != 0 {
		t.Errorf("oversized send counted %d frames on the wire", n)
	}

	// The pipe must still be registered and usable.
	if peers := a.Peers(); len(peers) != 1 || peers[0] != "b" {
		t.Errorf("Peers after failed send = %v", peers)
	}
	if err := a.Send("b", ping("after")); err != nil {
		t.Fatalf("send after oversized failure: %v", err)
	}
	envs := got.wait(t, 1)
	if envs[0].Payload.(*msg.SessionAck).SID != "after" {
		t.Errorf("delivered = %+v", envs[0])
	}
	if n := downs.Load(); n != 0 {
		t.Errorf("encode failure fired %d pipe-down notifications", n)
	}
}

// Concurrent Connects to the same node must single-flight the dial: one
// socket, one registered pipe, no replaced-and-closed connection churn.
func TestTCPConcurrentConnectSingleFlight(t *testing.T) {
	a, _ := NewTCP("a", "127.0.0.1:0")
	defer a.Close()
	b, _ := NewTCP("b", "127.0.0.1:0")
	defer b.Close()
	var gotA, gotB collector
	a.SetHandler(gotA.handler)
	b.SetHandler(gotB.handler)
	var downsA, downsB atomic.Uint64
	a.SetPipeDownHandler(func(string) { downsA.Add(1) })
	b.SetPipeDownHandler(func(string) { downsB.Add(1) })

	const racers = 16
	errs := make([]error, racers)
	var wg sync.WaitGroup
	wg.Add(racers)
	for i := 0; i < racers; i++ {
		go func(i int) {
			defer wg.Done()
			errs[i] = a.Connect("b", b.Addr())
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("connect %d: %v", i, err)
		}
	}
	if peers := a.Peers(); len(peers) != 1 || peers[0] != "b" {
		t.Errorf("a.Peers = %v, want exactly [b]", peers)
	}

	// Both directions work over the single pipe, and the race produced no
	// connection churn (a second socket registering would replace and close
	// the first, firing pipe-down on whoever was reading it).
	if err := a.Send("b", ping("ab")); err != nil {
		t.Fatal(err)
	}
	gotB.wait(t, 1)
	if err := b.Send("a", ping("ba")); err != nil {
		t.Fatal(err)
	}
	gotA.wait(t, 1)
	time.Sleep(50 * time.Millisecond)
	if peers := b.Peers(); len(peers) != 1 || peers[0] != "a" {
		t.Errorf("b.Peers = %v, want exactly [a]", peers)
	}
	if da, db := downsA.Load(), downsB.Load(); da != 0 || db != 0 {
		t.Errorf("connection churn: %d pipe-downs on a, %d on b", da, db)
	}
}

// A one-off large frame must not pin its encoding buffer on the pipe for
// the lifetime of the connection.
func TestTCPSendBufferShrinksAfterLargeFrame(t *testing.T) {
	a, _ := NewTCP("a", "127.0.0.1:0")
	defer a.Close()
	b, _ := NewTCP("b", "127.0.0.1:0")
	defer b.Close()
	var got collector
	b.SetHandler(got.handler)
	if err := a.Connect("b", b.Addr()); err != nil {
		t.Fatal(err)
	}

	big := &msg.RulesBroadcast{Version: 1, Text: strings.Repeat("x", 1<<20)}
	if err := a.Send("b", big); err != nil {
		t.Fatal(err)
	}
	got.wait(t, 1)

	a.mu.Lock()
	conn := a.conns["b"]
	a.mu.Unlock()
	conn.writeMu.Lock()
	bufCap := cap(conn.buf)
	conn.writeMu.Unlock()
	if bufCap > bufRetain {
		t.Errorf("write buffer cap = %d after 1 MiB frame, want <= %d", bufCap, bufRetain)
	}
	if err := a.Send("b", ping("small")); err != nil {
		t.Fatal(err)
	}
	got.wait(t, 2)
}

// Close must abort a Connect stuck in its dial retry backoff instead of
// waiting the schedule out.
func TestTCPCloseAbortsDialBackoff(t *testing.T) {
	a, _ := NewTCP("a", "127.0.0.1:0")
	errCh := make(chan error, 1)
	go func() {
		errCh <- a.Connect("b", "127.0.0.1:1") // refused instantly, then backoff
	}()
	time.Sleep(5 * time.Millisecond)
	a.Close()
	select {
	case err := <-errCh:
		if err == nil {
			t.Error("connect to dead port during close returned nil")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Connect did not return after Close")
	}
}
