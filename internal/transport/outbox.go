package transport

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"codb/internal/msg"
)

// Outbox is the asynchronous per-destination outbound pipeline: it wraps any
// Transport and turns Send from a synchronous per-message write into an
// enqueue onto a bounded per-destination queue drained by one writer
// goroutine per pipe. A slow or stalled pipe therefore delays only its own
// queue, never the calling actor loop or the other pipes.
//
// # Coalescing and flush policy
//
// Each writer drains whatever its queue holds the moment it becomes free
// ("group commit"): while a frame is being written, newly enqueued payloads
// accumulate and are packed into a single msg.Batch envelope on the next
// iteration. The policy is therefore:
//
//   - flush on idle: a payload enqueued while the writer is idle is sent
//     immediately — there is no linger timer, so batching adds no
//     artificial latency;
//   - flush on size: a batch is cut at BatchPayloads payloads or BatchBytes
//     payload volume, whichever is reached first;
//   - flush on session-critical messages: because nothing lingers,
//     SessionAck / SessionDone / LinkClose control traffic — which drives
//     Dijkstra–Scholten termination and the link-state protocol — goes out
//     in the first frame the writer can cut, at worst coalesced with the
//     data it follows, never held for more coalescing.
//
// Receiving transports unpack a Batch and deliver its payloads as
// individual envelopes in order, so batching is invisible above the
// transport and per-destination FIFO order is preserved end to end.
//
// # Backpressure and failure
//
// A queue holds at most QueueLimit payloads; Send blocks while the queue is
// full (backpressure), and fails fast once the pipe is gone. Because
// delivery is asynchronous, a write failure is observed after Send has
// returned: every accepted-but-undelivered payload is reported through
// OnDrop, exactly once, so the owner can compensate the termination
// detector (core.CompensateLost). Disconnect likewise reports every payload
// still queued for the dropped pipe. Close instead flushes: writers drain
// their queues before the underlying transport is torn down.
type Outbox struct {
	tr     Transport
	opts   OutboxOptions
	onDrop func(to string, p msg.Payload, err error)

	mu     sync.Mutex
	queues map[string]*outQueue
	closed bool
	wg     sync.WaitGroup
	downFn func(peer string)

	frames   atomic.Uint64
	payloads atomic.Uint64
	batches  atomic.Uint64
}

// OutboxOptions tunes the pipeline; the zero value selects the defaults.
type OutboxOptions struct {
	// QueueLimit bounds the payloads queued per destination; Send blocks
	// while the queue is full (backpressure). 0 selects 4096.
	QueueLimit int
	// BatchPayloads caps the payloads coalesced into one Batch. 0 = 128.
	BatchPayloads int
	// BatchBytes caps the payload volume of one Batch. 0 = 256 KiB.
	BatchBytes int
	// CloseTimeout bounds Close's graceful drain; past it, stalled pipes
	// are torn down and their queued payloads reported through OnDrop.
	// 0 selects 5s.
	CloseTimeout time.Duration
	// OnDrop is invoked — from a writer goroutine, once per payload — for
	// every payload accepted by Send but not delivered (pipe failure or
	// Disconnect with queued frames). It must not call back into the
	// Outbox synchronously.
	OnDrop func(to string, p msg.Payload, err error)
}

// OutboxStats counts the pipeline's wire activity.
type OutboxStats struct {
	// Frames is the number of envelopes handed to the underlying
	// transport (each one frame on the TCP wire).
	Frames uint64
	// Payloads is the number of payloads shipped inside those frames.
	Payloads uint64
	// Batches counts the frames that coalesced two or more payloads.
	Batches uint64
}

const (
	defaultQueueLimit    = 4096
	defaultBatchPayloads = 128
	defaultBatchBytes    = 256 << 10
	defaultCloseTimeout  = 5 * time.Second
)

// NewOutbox wraps a transport in an outbound pipeline. The Outbox owns the
// transport from here on: callers use the Outbox as their Transport and
// must not send through the wrapped transport directly.
func NewOutbox(tr Transport, opts OutboxOptions) *Outbox {
	if opts.QueueLimit <= 0 {
		opts.QueueLimit = defaultQueueLimit
	}
	if opts.BatchPayloads <= 0 {
		opts.BatchPayloads = defaultBatchPayloads
	}
	if opts.BatchBytes <= 0 {
		opts.BatchBytes = defaultBatchBytes
	}
	if opts.CloseTimeout <= 0 {
		opts.CloseTimeout = defaultCloseTimeout
	}
	o := &Outbox{tr: tr, opts: opts, onDrop: opts.OnDrop, queues: make(map[string]*outQueue)}
	if pn, ok := tr.(PipeNotifier); ok {
		pn.SetPipeDownHandler(o.handlePipeDown)
	}
	return o
}

// SetPipeDownHandler implements PipeNotifier: the handler fires after the
// Outbox has dropped the dead pipe's queue (reporting queued payloads
// through OnDrop), so by the time the owner observes the failure the
// pipe's per-destination state is already settled.
func (o *Outbox) SetPipeDownHandler(fn func(peer string)) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.downFn = fn
}

// handlePipeDown intercepts the underlying transport's pipe-failure
// notification: the destination's queue is failed (its queued payloads are
// reported through OnDrop) and the notification is forwarded.
func (o *Outbox) handlePipeDown(peer string) {
	o.mu.Lock()
	q := o.queues[peer]
	delete(o.queues, peer)
	fn := o.downFn
	o.mu.Unlock()
	if q != nil {
		dropped := q.close(false)
		o.reportDrops(peer, dropped, fmt.Errorf("transport: pipe to %s failed", peer))
	}
	if fn != nil {
		fn(peer)
	}
}

// Self implements Transport.
func (o *Outbox) Self() string { return o.tr.Self() }

// Underlying returns the wrapped transport (for capability probing, e.g.
// the TCP dial-back address; senders must keep going through the Outbox).
func (o *Outbox) Underlying() Transport { return o.tr }

// SetHandler implements Transport (inbound traffic is untouched).
func (o *Outbox) SetHandler(h Handler) { o.tr.SetHandler(h) }

// Peers implements Transport.
func (o *Outbox) Peers() []string { return o.tr.Peers() }

// Stats returns the pipeline's cumulative wire counters.
func (o *Outbox) Stats() OutboxStats {
	return OutboxStats{Frames: o.frames.Load(), Payloads: o.payloads.Load(), Batches: o.batches.Load()}
}

// Connect implements Transport: it establishes the underlying pipe and its
// writer goroutine.
func (o *Outbox) Connect(node, addr string) error {
	if err := o.tr.Connect(node, addr); err != nil {
		return err
	}
	if o.queueFor(node) == nil {
		return ErrClosed
	}
	return nil
}

// ConnectAddr implements AddrDialer when the underlying transport does: the
// pipe is established by address, the learned name gets its writer queue.
func (o *Outbox) ConnectAddr(addr string) (string, error) {
	ad, ok := o.tr.(AddrDialer)
	if !ok {
		return "", fmt.Errorf("transport: %T cannot dial by address", o.tr)
	}
	node, err := ad.ConnectAddr(addr)
	if err != nil {
		return "", err
	}
	if o.queueFor(node) == nil {
		return "", ErrClosed
	}
	return node, nil
}

// Send implements Transport: the payload is enqueued for the destination's
// writer. Send blocks while the queue is full and returns an error only
// when no pipe to the destination exists (or the Outbox is closed); later
// delivery failures are reported through OnDrop.
func (o *Outbox) Send(to string, p msg.Payload) error {
	o.mu.Lock()
	if o.closed {
		o.mu.Unlock()
		return ErrClosed
	}
	q := o.queues[to]
	o.mu.Unlock()
	if q == nil {
		// No queue yet: the pipe may have been established from the far
		// side (accept-side TCP connections have no Connect call here).
		if !o.hasPipe(to) {
			return fmt.Errorf("%w: %s", ErrUnknownPeer, to)
		}
		if q = o.queueFor(to); q == nil {
			return ErrClosed
		}
	}
	if !q.put(p, o.opts.QueueLimit) {
		return fmt.Errorf("%w: %s (pipe lost)", ErrUnknownPeer, to)
	}
	return nil
}

// Disconnect implements Transport: the pipe is dropped and every payload
// still queued for it is reported through OnDrop.
func (o *Outbox) Disconnect(node string) {
	o.mu.Lock()
	q := o.queues[node]
	delete(o.queues, node)
	o.mu.Unlock()
	if q != nil {
		dropped := q.close(false)
		o.reportDrops(node, dropped, fmt.Errorf("transport: disconnected from %s", node))
	}
	o.tr.Disconnect(node)
}

// Close implements Transport: queued frames are flushed (writers drain
// their queues), then the underlying transport is closed. The drain is
// bounded by CloseTimeout: a remote that stopped reading its socket would
// otherwise pin a writer in a kernel write forever and hang Close, so on
// timeout the underlying transport is torn down first, erroring the
// stalled writes out and reporting the undrained payloads through OnDrop.
func (o *Outbox) Close() error {
	o.mu.Lock()
	if o.closed {
		o.mu.Unlock()
		return nil
	}
	o.closed = true
	qs := make([]*outQueue, 0, len(o.queues))
	for _, q := range o.queues {
		qs = append(qs, q)
	}
	o.queues = make(map[string]*outQueue)
	o.mu.Unlock()
	for _, q := range qs {
		q.close(true)
	}
	drained := make(chan struct{})
	go func() {
		o.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
	case <-time.After(o.opts.CloseTimeout):
		// Abandon the drain: closing the transport unblocks stalled
		// writers with errors; their fail path reports the leftovers.
		o.tr.Close()
		for _, q := range qs {
			if rest := q.close(false); len(rest) > 0 {
				o.reportDrops(q.to, rest, errors.New("transport: close timeout, pipe stalled"))
			}
		}
		<-drained
	}
	return o.tr.Close()
}

// Flush blocks until every queue accepted so far has been written out (or
// its pipe has failed). Tests and graceful shutdowns use it to observe the
// pipeline in a quiescent state.
func (o *Outbox) Flush() {
	o.mu.Lock()
	qs := make([]*outQueue, 0, len(o.queues))
	for _, q := range o.queues {
		qs = append(qs, q)
	}
	o.mu.Unlock()
	for _, q := range qs {
		q.waitIdle()
	}
}

// hasPipe reports whether the underlying transport has a pipe to the node.
func (o *Outbox) hasPipe(to string) bool {
	for _, p := range o.tr.Peers() {
		if p == to {
			return true
		}
	}
	return false
}

// queueFor returns (creating if needed) the destination's queue, spawning
// its writer; nil when the Outbox is closed.
func (o *Outbox) queueFor(node string) *outQueue {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.closed {
		return nil
	}
	q := o.queues[node]
	if q == nil {
		q = newOutQueue(node)
		o.queues[node] = q
		o.wg.Add(1)
		go o.run(q)
	}
	return q
}

// run is one destination's writer: it drains the queue batch by batch until
// the queue closes, failing the whole queue on the first write error.
func (o *Outbox) run(q *outQueue) {
	defer o.wg.Done()
	for {
		batch, ok := q.takeBatch(o.opts.BatchPayloads, o.opts.BatchBytes)
		if !ok {
			return
		}
		var p msg.Payload
		if len(batch) == 1 {
			p = batch[0]
		} else {
			p = &msg.Batch{Payloads: batch}
			o.batches.Add(1)
		}
		err := o.tr.Send(q.to, p)
		q.doneBatch()
		if err != nil {
			o.fail(q, batch, err)
			return
		}
		o.frames.Add(1)
		o.payloads.Add(uint64(len(batch)))
	}
}

// fail tears one queue down after a write error: the failed batch and every
// payload still queued are reported through OnDrop.
func (o *Outbox) fail(q *outQueue, batch []msg.Payload, err error) {
	o.mu.Lock()
	if o.queues[q.to] == q {
		delete(o.queues, q.to)
	}
	o.mu.Unlock()
	rest := q.close(false)
	o.reportDrops(q.to, append(batch, rest...), err)
}

func (o *Outbox) reportDrops(to string, payloads []msg.Payload, err error) {
	if o.onDrop == nil {
		return
	}
	for _, p := range payloads {
		o.onDrop(to, p, err)
	}
}

// outQueue is one destination's bounded FIFO of pending payloads.
type outQueue struct {
	to string

	mu     sync.Mutex
	cond   *sync.Cond
	items  []msg.Payload
	busy   bool // a batch is popped but not yet written
	closed bool
	drain  bool // closed gracefully: writer drains remaining items
}

func newOutQueue(to string) *outQueue {
	q := &outQueue{to: to}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// put enqueues, blocking while the queue is full; false when the queue has
// closed (the pipe is gone).
func (q *outQueue) put(p msg.Payload, limit int) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	for !q.closed && len(q.items) >= limit {
		q.cond.Wait()
	}
	if q.closed {
		return false
	}
	q.items = append(q.items, p)
	q.cond.Broadcast()
	return true
}

// takeBatch blocks until payloads are pending (or the queue closes) and
// pops the next batch, bounded by maxN payloads / maxBytes volume. False
// means the writer should exit.
func (q *outQueue) takeBatch(maxN, maxBytes int) ([]msg.Payload, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 || (q.closed && !q.drain) {
		return nil, false
	}
	n, size := 0, 0
	for n < len(q.items) && n < maxN && size < maxBytes {
		size += q.items[n].Size()
		n++
	}
	batch := make([]msg.Payload, n)
	copy(batch, q.items[:n])
	rest := copy(q.items, q.items[n:])
	clear(q.items[rest:])
	q.items = q.items[:rest]
	q.busy = true
	q.cond.Broadcast()
	return batch, true
}

// doneBatch marks the popped batch written (or failed).
func (q *outQueue) doneBatch() {
	q.mu.Lock()
	q.busy = false
	q.cond.Broadcast()
	q.mu.Unlock()
}

// close shuts the queue; with drain the writer flushes the remaining items
// first, otherwise they are returned for OnDrop reporting. Force-closing a
// queue that was closed for draining (a write failure or close timeout
// mid-drain) hands back the undrained remainder, so every accepted payload
// is either written or reported — never silently discarded.
func (q *outQueue) close(drain bool) []msg.Payload {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		if drain || !q.drain {
			return nil // already force-closed, or nothing to downgrade
		}
		q.drain = false
		rest := q.items
		q.items = nil
		q.cond.Broadcast()
		return rest
	}
	q.closed = true
	q.drain = drain
	var rest []msg.Payload
	if !drain {
		rest = q.items
		q.items = nil
	}
	q.cond.Broadcast()
	return rest
}

// waitIdle blocks until the queue is empty with no batch in flight.
func (q *outQueue) waitIdle() {
	q.mu.Lock()
	defer q.mu.Unlock()
	for (len(q.items) > 0 || q.busy) && !(q.closed && !q.drain) {
		q.cond.Wait()
	}
}
