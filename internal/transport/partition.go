package transport

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"codb/internal/msg"
)

// Partitioner wraps a Transport with a fault-injection seam for tests,
// stress runs, and the partition/heal benchmark: frames to or from a set of
// peers can be silently dropped (a network partition) or delayed (a slow
// link) per direction, without the underlying transport noticing.
//
// A partition here is *silent*, matching what a real partition looks like
// from the endpoints: outbound Sends to a blocked peer report success and
// discard the frame, and inbound envelopes from a blocked peer are dropped
// before the handler sees them. Neither side gets an error — only the
// absence of traffic (missed heartbeats, stranded acks) reveals the fault,
// which is exactly the signal the suspicion failure detector consumes.
// Connect attempts to a blocked peer do fail, as a dial into a partition
// would, but without touching the inner transport's dial-failure counters.
//
// To partition a pair of live nodes symmetrically, wrap both endpoints and
// block the opposite peer on each; heartbeats are written by the inner TCP
// transport below this wrapper, so only the receiving side's inbound drop
// silences them.
type Partitioner struct {
	tr Transport

	mu       sync.Mutex
	blockTo  map[string]bool
	blockFrm map[string]bool
	delay    time.Duration

	handlerMu sync.Mutex
	handler   Handler

	droppedOut atomic.Uint64
	droppedIn  atomic.Uint64
}

// ErrPartitioned is returned by Connect for a peer the injector blocks.
var ErrPartitioned = fmt.Errorf("transport: injected partition")

// NewPartitioner wraps tr. It installs itself as tr's handler, so it must
// wrap the transport before the peer is constructed on top of it.
func NewPartitioner(tr Transport) *Partitioner {
	f := &Partitioner{
		tr:       tr,
		blockTo:  make(map[string]bool),
		blockFrm: make(map[string]bool),
	}
	tr.SetHandler(f.deliver)
	return f
}

// Underlying returns the wrapped transport.
func (f *Partitioner) Underlying() Transport { return f.tr }

// Partition blocks both directions to and from the named peers.
func (f *Partitioner) Partition(peers ...string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, p := range peers {
		f.blockTo[p] = true
		f.blockFrm[p] = true
	}
}

// Heal unblocks both directions for the named peers; with no arguments it
// heals everything.
func (f *Partitioner) Heal(peers ...string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(peers) == 0 {
		f.blockTo = make(map[string]bool)
		f.blockFrm = make(map[string]bool)
		return
	}
	for _, p := range peers {
		delete(f.blockTo, p)
		delete(f.blockFrm, p)
	}
}

// BlockOutbound blocks only frames sent to the named peers.
func (f *Partitioner) BlockOutbound(peers ...string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, p := range peers {
		f.blockTo[p] = true
	}
}

// BlockInbound blocks only frames received from the named peers.
func (f *Partitioner) BlockInbound(peers ...string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, p := range peers {
		f.blockFrm[p] = true
	}
}

// SetDelay sleeps every inbound delivery by d (0 disables). Delivery is
// per-sender FIFO below this wrapper, so the delay models a uniformly slow
// ingress path rather than reordering.
func (f *Partitioner) SetDelay(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.delay = d
}

// Dropped reports frames discarded by the injector (outbound, inbound).
func (f *Partitioner) Dropped() (out, in uint64) {
	return f.droppedOut.Load(), f.droppedIn.Load()
}

func (f *Partitioner) blockedTo(peer string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.blockTo[peer]
}

// deliver is the inner transport's handler: it applies the inbound drop and
// delay, then forwards to the handler installed via SetHandler.
func (f *Partitioner) deliver(env msg.Envelope) {
	f.mu.Lock()
	drop := f.blockFrm[env.From]
	delay := f.delay
	f.mu.Unlock()
	if drop {
		f.droppedIn.Add(1)
		return
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	f.handlerMu.Lock()
	h := f.handler
	f.handlerMu.Unlock()
	if h != nil {
		h(env)
	}
}

// Self implements Transport.
func (f *Partitioner) Self() string { return f.tr.Self() }

// SetHandler implements Transport: h receives the envelopes that survive
// the inbound filter.
func (f *Partitioner) SetHandler(h Handler) {
	f.handlerMu.Lock()
	defer f.handlerMu.Unlock()
	f.handler = h
}

// Connect implements Transport: a dial into a partition fails without
// reaching the inner transport.
func (f *Partitioner) Connect(node, addr string) error {
	if f.blockedTo(node) {
		return fmt.Errorf("connect to %s: %w", node, ErrPartitioned)
	}
	return f.tr.Connect(node, addr)
}

// Send implements Transport: frames to a blocked peer vanish silently.
func (f *Partitioner) Send(to string, p msg.Payload) error {
	if f.blockedTo(to) {
		f.droppedOut.Add(1)
		return nil
	}
	return f.tr.Send(to, p)
}

// Disconnect implements Transport.
func (f *Partitioner) Disconnect(node string) { f.tr.Disconnect(node) }

// Peers implements Transport. Partitioned peers stay listed: the endpoints
// of a real partition keep their sockets until a timeout notices.
func (f *Partitioner) Peers() []string { return f.tr.Peers() }

// Close implements Transport.
func (f *Partitioner) Close() error { return f.tr.Close() }

// ConnectAddr implements AddrDialer when the inner transport does.
func (f *Partitioner) ConnectAddr(addr string) (string, error) {
	d, ok := f.tr.(AddrDialer)
	if !ok {
		return "", fmt.Errorf("transport: %T cannot dial by address", f.tr)
	}
	return d.ConnectAddr(addr)
}

// SetPipeDownHandler implements PipeNotifier when the inner transport does.
func (f *Partitioner) SetPipeDownHandler(fn func(peer string)) {
	if n, ok := f.tr.(PipeNotifier); ok {
		n.SetPipeDownHandler(fn)
	}
}

// StartHeartbeats implements HeartbeatStarter when the inner transport
// does. Heartbeats are emitted below the injector, so an outbound block
// does not stop them — partition the receiving side's inbound direction to
// silence a pipe, as NewPartitioner's doc describes.
func (f *Partitioner) StartHeartbeats(interval time.Duration) {
	if hb, ok := f.tr.(HeartbeatStarter); ok {
		hb.StartHeartbeats(interval)
	}
}
