package transport

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"

	"codb/internal/msg"
	"codb/internal/wire"
)

// rawDial opens a plain socket to a TCP transport and performs a handshake
// with the given version range, returning the connection and the peer's
// hello. Used to simulate peers speaking other protocol revisions.
func rawDial(t *testing.T, addr, name string, min, max byte) (net.Conn, wire.Hello, error) {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	if err := wire.WriteHello(c, wire.Hello{Name: name, Min: min, Max: max}); err != nil {
		c.Close()
		t.Fatalf("write hello: %v", err)
	}
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	theirs, err := wire.ReadHello(c)
	if err != nil {
		return c, wire.Hello{}, err
	}
	c.SetReadDeadline(time.Time{})
	return c, theirs, nil
}

// waitClosed asserts the far side closes the connection (read hits EOF or
// reset) within the deadline.
func waitClosed(t *testing.T, c net.Conn) {
	t.Helper()
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	var buf [64]byte
	for {
		if _, err := c.Read(buf[:]); err != nil {
			if err == io.EOF {
				return
			}
			var ne net.Error
			if ok := errorsAs(err, &ne); ok && ne.Timeout() {
				t.Fatal("connection not closed by peer")
			}
			return // reset etc.
		}
	}
}

// errorsAs avoids importing errors twice in helpers.
func errorsAs(err error, target *net.Error) bool {
	ne, ok := err.(net.Error)
	if ok {
		*target = ne
	}
	return ok
}

// TestTCPHandshakeVersionMismatch: a dialer offering only a future protocol
// version is refused — the acceptor closes the connection without ever
// registering a pipe, so no pipe-down fires.
func TestTCPHandshakeVersionMismatch(t *testing.T) {
	srv, err := NewTCP("srv", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	downs := make(chan string, 1)
	srv.SetPipeDownHandler(func(p string) { downs <- p })

	c, _, err := rawDial(t, srv.Addr(), "future", 99, 99)
	if err == nil {
		// The acceptor may close before or after writing anything; either
		// way the connection must die without a registered pipe.
		waitClosed(t, c)
	}
	c.Close()

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if len(srv.Peers()) == 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := srv.Peers(); len(got) != 0 {
		t.Fatalf("refused dialer registered a pipe: %v", got)
	}
	select {
	case p := <-downs:
		t.Fatalf("pipe-down fired for never-established pipe %q", p)
	default:
	}
}

// TestTCPOldVersionFramesFailPipeCleanly: after a good handshake, frames
// carrying a different version than negotiated tear the pipe down through
// the normal pipe-down path — exactly what the Dijkstra–Scholten deficit
// compensation upstream needs to terminate sessions.
func TestTCPOldVersionFramesFailPipeCleanly(t *testing.T) {
	srv, err := NewTCP("srv", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	downs := make(chan string, 1)
	srv.SetPipeDownHandler(func(p string) { downs <- p })

	c, theirs, err := rawDial(t, srv.Addr(), "old", wire.MinVersion, wire.MaxVersion)
	if err != nil {
		t.Fatalf("handshake: %v", err)
	}
	if theirs.Name != "srv" {
		t.Fatalf("peer identifies as %q", theirs.Name)
	}
	defer c.Close()

	// Now speak a version that was never negotiated.
	body, tag, err := msg.AppendEnvelope(nil, msg.Envelope{From: "old", Payload: ping("s1")})
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteFrame(c, wire.MaxVersion+1, byte(tag), body); err != nil {
		t.Fatal(err)
	}

	select {
	case p := <-downs:
		if p != "old" {
			t.Fatalf("pipe-down for %q, want old", p)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no pipe-down after wrong-version frame")
	}
	waitClosed(t, c)
}

// TestTCPUnknownTypeAndBadCRCFailPipe: unknown payload tags and corrupted
// bodies likewise come down through the pipe-down path.
func TestTCPUnknownTypeAndBadCRCFailPipe(t *testing.T) {
	cases := []struct {
		name  string
		frame func(t *testing.T) []byte
	}{
		{"unknown-type", func(t *testing.T) []byte {
			return wire.AppendFrame(nil, wire.V1, 0xEE, []byte("??"))
		}},
		{"wire-type-after-handshake", func(t *testing.T) []byte {
			var b bytes.Buffer
			if err := wire.WriteHello(&b, wire.Hello{Name: "again", Min: 1, Max: 1}); err != nil {
				t.Fatal(err)
			}
			return b.Bytes()
		}},
		{"bad-crc", func(t *testing.T) []byte {
			body, tag, err := msg.AppendEnvelope(nil, msg.Envelope{From: "old", Payload: ping("s1")})
			if err != nil {
				t.Fatal(err)
			}
			f := wire.AppendFrame(nil, wire.V1, byte(tag), body)
			f[len(f)-1] ^= 0x01
			return f
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv, err := NewTCP("srv", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
			downs := make(chan string, 1)
			srv.SetPipeDownHandler(func(p string) { downs <- p })

			c, _, err := rawDial(t, srv.Addr(), "old", wire.MinVersion, wire.MaxVersion)
			if err != nil {
				t.Fatalf("handshake: %v", err)
			}
			defer c.Close()
			if _, err := c.Write(tc.frame(t)); err != nil {
				t.Fatal(err)
			}
			select {
			case p := <-downs:
				if p != "old" {
					t.Fatalf("pipe-down for %q, want old", p)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("no pipe-down after bad frame")
			}
		})
	}
}

// TestTCPMixedVersionRangeNegotiatesDown: a dialer advertising a wider
// range settles on the highest version the acceptor speaks, and traffic
// flows at that version.
func TestTCPMixedVersionRangeNegotiatesDown(t *testing.T) {
	srv, err := NewTCP("srv", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	var got collector
	srv.SetHandler(got.handler)

	// Pretend to be a newer build that still speaks V1.
	c, theirs, err := rawDial(t, srv.Addr(), "newer", wire.MinVersion, wire.MaxVersion+3)
	if err != nil {
		t.Fatalf("handshake: %v", err)
	}
	defer c.Close()
	v, err := wire.Negotiate(wire.Hello{Name: "newer", Min: wire.MinVersion, Max: wire.MaxVersion + 3}, theirs)
	if err != nil {
		t.Fatal(err)
	}
	if v != wire.MaxVersion {
		t.Fatalf("negotiated %d, want %d", v, wire.MaxVersion)
	}
	body, tag, err := msg.AppendEnvelope(nil, msg.Envelope{From: "newer", Payload: ping("s1")})
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteFrame(c, v, byte(tag), body); err != nil {
		t.Fatal(err)
	}
	envs := got.wait(t, 1)
	if envs[0].From != "newer" || envs[0].Payload.(*msg.SessionAck).SID != "s1" {
		t.Fatalf("unexpected delivery %+v", envs[0])
	}
}
