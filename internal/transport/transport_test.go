package transport

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"codb/internal/msg"
)

// collector gathers delivered envelopes behind a lock.
type collector struct {
	mu   sync.Mutex
	envs []msg.Envelope
}

func (c *collector) handler(env msg.Envelope) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.envs = append(c.envs, env)
}

func (c *collector) wait(t *testing.T, n int) []msg.Envelope {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		c.mu.Lock()
		if len(c.envs) >= n {
			out := append([]msg.Envelope(nil), c.envs...)
			c.mu.Unlock()
			return out
		}
		c.mu.Unlock()
		if time.Now().After(deadline) {
			c.mu.Lock()
			defer c.mu.Unlock()
			t.Fatalf("timed out waiting for %d envelopes, have %d", n, len(c.envs))
			return nil
		}
		time.Sleep(time.Millisecond)
	}
}

func ping(sid string) msg.Payload { return &msg.SessionAck{SID: sid, N: 1} }

func TestBusBasicDelivery(t *testing.T) {
	bus := NewBus()
	a := bus.MustJoin("a")
	b := bus.MustJoin("b")
	var got collector
	b.SetHandler(got.handler)
	if err := a.Connect("b", ""); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("b", ping("s1")); err != nil {
		t.Fatal(err)
	}
	envs := got.wait(t, 1)
	if envs[0].From != "a" || envs[0].Payload.(*msg.SessionAck).SID != "s1" {
		t.Errorf("envelope = %+v", envs[0])
	}
}

func TestBusOrderingPerSender(t *testing.T) {
	bus := NewBus()
	a := bus.MustJoin("a")
	b := bus.MustJoin("b")
	var got collector
	b.SetHandler(got.handler)
	a.Connect("b", "")
	const n = 200
	for i := 0; i < n; i++ {
		a.Send("b", &msg.SessionAck{SID: "s", N: i})
	}
	envs := got.wait(t, n)
	for i, e := range envs {
		if e.Payload.(*msg.SessionAck).N != i {
			t.Fatalf("out of order at %d: %d", i, e.Payload.(*msg.SessionAck).N)
		}
	}
}

func TestBusErrors(t *testing.T) {
	bus := NewBus()
	a := bus.MustJoin("a")
	if err := a.Connect("ghost", ""); err == nil {
		t.Error("connect to unknown node accepted")
	}
	if err := a.Send("b", ping("s")); err == nil {
		t.Error("send without pipe accepted")
	}
	if _, err := bus.Join("a"); err == nil {
		t.Error("duplicate join accepted")
	}
	b := bus.MustJoin("b")
	a.Connect("b", "")
	b.Close()
	if err := a.Send("b", ping("s")); err == nil {
		t.Error("send to departed node accepted")
	}
	a.Close()
	if err := a.Send("b", ping("s")); err != ErrClosed {
		t.Errorf("send after close = %v", err)
	}
	if err := a.Connect("b", ""); err != ErrClosed {
		t.Errorf("connect after close = %v", err)
	}
}

func TestBusDisconnectAndPeers(t *testing.T) {
	bus := NewBus()
	a := bus.MustJoin("a")
	bus.MustJoin("b")
	a.Connect("b", "")
	if got := a.Peers(); len(got) != 1 || got[0] != "b" {
		t.Errorf("Peers = %v", got)
	}
	a.Disconnect("b")
	if got := a.Peers(); len(got) != 0 {
		t.Errorf("Peers after disconnect = %v", got)
	}
	if err := a.Send("b", ping("s")); err == nil {
		t.Error("send after disconnect accepted")
	}
	if got := bus.Nodes(); len(got) != 2 {
		t.Errorf("Nodes = %v", got)
	}
}

func TestBusFaultInjectionDrop(t *testing.T) {
	bus := NewBus()
	a := bus.MustJoin("a")
	b := bus.MustJoin("b")
	var got collector
	b.SetHandler(got.handler)
	a.Connect("b", "")
	bus.SetFaultPlan(NewFaultPlan(42, 1.0, 0)) // drop everything
	for i := 0; i < 10; i++ {
		a.Send("b", ping("s"))
	}
	bus.SetFaultPlan(nil)
	a.Send("b", &msg.SessionAck{SID: "marker", N: 0})
	envs := got.wait(t, 1)
	if envs[0].Payload.(*msg.SessionAck).SID != "marker" {
		t.Errorf("dropped messages were delivered: %+v", envs)
	}
}

func TestBusFaultInjectionDuplicate(t *testing.T) {
	bus := NewBus()
	a := bus.MustJoin("a")
	b := bus.MustJoin("b")
	var got collector
	b.SetHandler(got.handler)
	a.Connect("b", "")
	bus.SetFaultPlan(NewFaultPlan(7, 0, 1.0)) // duplicate everything
	a.Send("b", ping("s"))
	envs := got.wait(t, 2)
	if len(envs) < 2 {
		t.Error("duplicate not delivered")
	}
}

func TestFaultPlanProtect(t *testing.T) {
	f := NewFaultPlan(1, 1.0, 0)
	f.Protect = func(p msg.Payload) bool {
		_, isAck := p.(*msg.SessionAck)
		return isAck
	}
	if drop, _ := f.decide(&msg.SessionAck{}); drop {
		t.Error("protected payload dropped")
	}
	if drop, _ := f.decide(&msg.SessionDone{}); !drop {
		t.Error("unprotected payload kept with DropProb=1")
	}
}

func TestTCPBasicExchange(t *testing.T) {
	a, err := NewTCP("a", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewTCP("b", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	var gotA, gotB collector
	a.SetHandler(gotA.handler)
	b.SetHandler(gotB.handler)

	if err := a.Connect("b", b.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("b", ping("s1")); err != nil {
		t.Fatal(err)
	}
	envs := gotB.wait(t, 1)
	if envs[0].From != "a" {
		t.Errorf("From = %q", envs[0].From)
	}

	// The accept side can reply over the same pipe without dialing.
	if err := b.Send("a", ping("s2")); err != nil {
		t.Fatal(err)
	}
	envs = gotA.wait(t, 1)
	if envs[0].Payload.(*msg.SessionAck).SID != "s2" {
		t.Errorf("reply = %+v", envs[0])
	}
}

func TestTCPIdentityMismatch(t *testing.T) {
	b, err := NewTCP("b", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a, err := NewTCP("a", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Connect("not-b", b.Addr()); err == nil {
		t.Error("identity mismatch accepted")
	}
}

func TestTCPConnectIdempotent(t *testing.T) {
	a, _ := NewTCP("a", "127.0.0.1:0")
	defer a.Close()
	b, _ := NewTCP("b", "127.0.0.1:0")
	defer b.Close()
	if err := a.Connect("b", b.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := a.Connect("b", b.Addr()); err != nil {
		t.Fatalf("re-connect: %v", err)
	}
	if got := a.Peers(); len(got) != 1 {
		t.Errorf("Peers = %v", got)
	}
}

func TestTCPDialFailure(t *testing.T) {
	a, _ := NewTCP("a", "127.0.0.1:0")
	defer a.Close()
	if err := a.Connect("b", "127.0.0.1:1"); err == nil {
		t.Error("dial to dead port accepted")
	}
	if err := a.Connect("b", ""); err == nil {
		t.Error("empty address accepted")
	}
}

func TestTCPManyMessagesBothDirections(t *testing.T) {
	a, _ := NewTCP("a", "127.0.0.1:0")
	defer a.Close()
	b, _ := NewTCP("b", "127.0.0.1:0")
	defer b.Close()
	var gotA, gotB collector
	a.SetHandler(gotA.handler)
	b.SetHandler(gotB.handler)
	if err := a.Connect("b", b.Addr()); err != nil {
		t.Fatal(err)
	}
	const n = 500
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if err := a.Send("b", &msg.SessionAck{SID: "ab", N: i}); err != nil {
				t.Errorf("a->b %d: %v", i, err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if err := b.Send("a", &msg.SessionAck{SID: "ba", N: i}); err != nil {
				t.Errorf("b->a %d: %v", i, err)
				return
			}
		}
	}()
	wg.Wait()
	envsB := gotB.wait(t, n)
	envsA := gotA.wait(t, n)
	for i := range envsB {
		if envsB[i].Payload.(*msg.SessionAck).N != i {
			t.Fatalf("a->b out of order at %d", i)
		}
	}
	for i := range envsA {
		if envsA[i].Payload.(*msg.SessionAck).N != i {
			t.Fatalf("b->a out of order at %d", i)
		}
	}
}

func TestTCPDisconnectAndSendError(t *testing.T) {
	a, _ := NewTCP("a", "127.0.0.1:0")
	defer a.Close()
	b, _ := NewTCP("b", "127.0.0.1:0")
	defer b.Close()
	a.Connect("b", b.Addr())
	a.Disconnect("b")
	if err := a.Send("b", ping("s")); err == nil {
		t.Error("send after disconnect accepted")
	}
}

func TestTCPCloseIsIdempotentAndStopsSends(t *testing.T) {
	a, _ := NewTCP("a", "127.0.0.1:0")
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("b", ping("s")); err != ErrClosed {
		t.Errorf("send after close = %v", err)
	}
}

func TestMailboxCloseUnblocksTake(t *testing.T) {
	m := newMailbox()
	done := make(chan bool)
	go func() {
		_, ok := m.take()
		done <- ok
	}()
	time.Sleep(5 * time.Millisecond)
	m.close()
	select {
	case ok := <-done:
		if ok {
			t.Error("take returned ok after close")
		}
	case <-time.After(time.Second):
		t.Fatal("take did not unblock")
	}
	if m.put(msg.Envelope{}) {
		t.Error("put after close accepted")
	}
}

func TestBusManyNodesFanout(t *testing.T) {
	bus := NewBus()
	hub := bus.MustJoin("hub")
	const n = 20
	cols := make([]*collector, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("n%d", i)
		tr := bus.MustJoin(name)
		cols[i] = &collector{}
		tr.SetHandler(cols[i].handler)
		hub.Connect(name, "")
	}
	for i := 0; i < n; i++ {
		hub.Send(fmt.Sprintf("n%d", i), ping("fan"))
	}
	for i := 0; i < n; i++ {
		cols[i].wait(t, 1)
	}
}
