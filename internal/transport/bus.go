package transport

import (
	"fmt"
	"math/rand"
	"sync"

	"codb/internal/msg"
)

// Bus is the in-process transport: a registry of nodes with per-node
// delivery goroutines. It simulates a whole P2P network inside one process,
// which is how the test suite and the benchmark harness run multi-peer
// topologies on one box.
//
// Fault injection: a FaultPlan can drop or duplicate messages, for testing
// the robustness-reporting paths. (The core protocol assumes reliable pipes
// as JXTA pipes are; faults are injected only in dedicated tests.)
type Bus struct {
	mu    sync.Mutex
	nodes map[string]*busNode
	fault *FaultPlan
}

type busNode struct {
	bus     *Bus
	name    string
	handler Handler
	box     *mailbox
	pipes   map[string]bool
	closed  bool
	wg      sync.WaitGroup
	mu      sync.Mutex
}

// FaultPlan configures probabilistic message faults; probabilities in
// [0,1]. The zero value injects nothing.
type FaultPlan struct {
	mu       sync.Mutex
	rnd      *rand.Rand
	DropProb float64
	DupProb  float64
	// Protect exempts a payload type from faults (e.g. acks), selected by
	// a predicate; nil protects nothing.
	Protect func(p msg.Payload) bool
}

// NewFaultPlan seeds a deterministic fault plan.
func NewFaultPlan(seed int64, drop, dup float64) *FaultPlan {
	return &FaultPlan{rnd: rand.New(rand.NewSource(seed)), DropProb: drop, DupProb: dup}
}

func (f *FaultPlan) decide(p msg.Payload) (drop, dup bool) {
	if f == nil {
		return false, false
	}
	if f.Protect != nil && f.Protect(p) {
		return false, false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.rnd == nil {
		f.rnd = rand.New(rand.NewSource(1))
	}
	return f.rnd.Float64() < f.DropProb, f.rnd.Float64() < f.DupProb
}

// NewBus returns an empty in-process network.
func NewBus() *Bus {
	return &Bus{nodes: make(map[string]*busNode)}
}

// SetFaultPlan installs (or clears, with nil) fault injection.
func (b *Bus) SetFaultPlan(f *FaultPlan) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fault = f
}

// Join registers a node and returns its Transport. Node names must be
// unique on the bus.
func (b *Bus) Join(name string) (Transport, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, dup := b.nodes[name]; dup {
		return nil, fmt.Errorf("transport: node %q already on the bus", name)
	}
	n := &busNode{bus: b, name: name, box: newMailbox(), pipes: make(map[string]bool)}
	b.nodes[name] = n
	n.wg.Add(1)
	go n.pump()
	return n, nil
}

// MustJoin is Join panicking on error.
func (b *Bus) MustJoin(name string) Transport {
	tr, err := b.Join(name)
	if err != nil {
		panic(err)
	}
	return tr
}

// Nodes lists every node on the bus (the global directory; in-process
// discovery is trivially complete, like a JXTA rendezvous that knows
// everyone).
func (b *Bus) Nodes() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]string, 0, len(b.nodes))
	for n := range b.nodes {
		out = append(out, n)
	}
	return out
}

func (b *Bus) lookup(name string) *busNode {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.nodes[name]
}

func (b *Bus) remove(name string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.nodes, name)
}

func (n *busNode) pump() {
	defer n.wg.Done()
	for {
		env, ok := n.box.take()
		if !ok {
			return
		}
		n.mu.Lock()
		h := n.handler
		n.mu.Unlock()
		if h != nil {
			h(env)
		}
	}
}

// Self implements Transport.
func (n *busNode) Self() string { return n.name }

// SetHandler implements Transport.
func (n *busNode) SetHandler(h Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.handler = h
}

// Connect implements Transport; addr is ignored (the bus registry resolves
// names).
func (n *busNode) Connect(node, addr string) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return ErrClosed
	}
	if n.bus.lookup(node) == nil {
		return fmt.Errorf("%w: %s", ErrUnknownPeer, node)
	}
	n.pipes[node] = true
	return nil
}

// Send implements Transport. Batch envelopes (msg.Batch, produced by the
// Outbox) are unpacked here: the receiver gets one envelope per packed
// payload, in order, and fault injection decides per payload.
func (n *busNode) Send(to string, p msg.Payload) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	piped := n.pipes[to]
	n.mu.Unlock()
	if !piped {
		return fmt.Errorf("%w: %s (no pipe)", ErrUnknownPeer, to)
	}
	target := n.bus.lookup(to)
	if target == nil {
		return fmt.Errorf("%w: %s (left the network)", ErrUnknownPeer, to)
	}
	n.bus.mu.Lock()
	fault := n.bus.fault
	n.bus.mu.Unlock()
	payloads := []msg.Payload{p}
	if b, ok := p.(*msg.Batch); ok {
		payloads = b.Payloads
	}
	for _, pl := range payloads {
		drop, dup := fault.decide(pl)
		if drop {
			continue
		}
		env := msg.Envelope{From: n.name, Payload: pl}
		if !target.box.put(env) {
			return fmt.Errorf("%w: %s (closed)", ErrUnknownPeer, to)
		}
		if dup {
			target.box.put(env)
		}
	}
	return nil
}

// Disconnect implements Transport.
func (n *busNode) Disconnect(node string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.pipes, node)
}

// Peers implements Transport.
func (n *busNode) Peers() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.pipes))
	for p := range n.pipes {
		out = append(out, p)
	}
	return out
}

// Close implements Transport.
func (n *busNode) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	n.mu.Unlock()
	n.bus.remove(n.name)
	n.box.close()
	n.wg.Wait()
	return nil
}
