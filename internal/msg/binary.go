package msg

import (
	"encoding/binary"
	"fmt"
	"sort"

	"codb/internal/relation"
)

// Binary payload codec for the versioned wire protocol (internal/wire).
//
// Every payload type has a fixed one-byte tag, carried in the frame header
// rather than in the body, so a frame body is exactly one payload encoding.
// Bodies are built from four primitives:
//
//	uvarint  — lengths, counts, enums (binary.AppendUvarint)
//	varint   — signed counters and timestamps (binary.AppendVarint, zigzag)
//	string   — uvarint byte length + raw bytes
//	tuple    — uvarint byte length + relation.EncodeTuple (the same
//	           order-preserving encoding the storage engine keys on, so
//	           tuple bodies move between index and wire without
//	           re-serialisation)
//
// Maps encode as a uvarint count followed by key-sorted entries, making the
// encoding deterministic: identical payloads produce identical bytes (the
// golden-vector tests in internal/wire depend on this). Decoding is strict —
// trailing bytes after a well-formed payload are an error — so a corrupt
// frame cannot be silently half-read.
//
// Compatibility: the tag space and field order are part of the wire
// protocol version (internal/wire). Tags 0x10–0x1F are version 1; the
// pull-propagation family at 0x20+ (UpdateHint, PullRequest, PullResponse,
// LinkDemand) and the Heartbeat liveness frame are version 2 — peers never
// send those tags on a connection negotiated at V1. Adding a payload type means a new tag; changing a field
// order or width means a new protocol version.

// Tag identifies a payload type on the wire. Tags 0x00–0x0F are reserved
// for the wire layer itself (handshake frames); payload tags start at 0x10.
type Tag uint8

const (
	TagSessionRequest Tag = 0x10 + iota
	TagSessionData
	TagSessionAck
	TagLinkClose
	TagSessionDone
	TagRulesBroadcast
	TagStatsRequest
	TagStatsReport
	TagStartUpdateCmd
	TagUpdateFinished
	TagDiscovery
	TagBatch
	TagJoinRequest
	TagJoinAccept
	TagLeave
	TagDirectoryDelta
)

// Pull-family tags (wire protocol version 2). Kept in their own block at
// 0x20 so the V1 tag space stays closed: a V1-negotiated connection never
// carries these (the peer layer degrades pull links to push toward peers
// that only speak V1).
const (
	TagUpdateHint Tag = 0x20 + iota
	TagPullRequest
	TagPullResponse
	TagLinkDemand
	TagHeartbeat
)

// String names the tag for diagnostics.
func (t Tag) String() string {
	switch t {
	case TagSessionRequest:
		return "SessionRequest"
	case TagSessionData:
		return "SessionData"
	case TagSessionAck:
		return "SessionAck"
	case TagLinkClose:
		return "LinkClose"
	case TagSessionDone:
		return "SessionDone"
	case TagRulesBroadcast:
		return "RulesBroadcast"
	case TagStatsRequest:
		return "StatsRequest"
	case TagStatsReport:
		return "StatsReport"
	case TagStartUpdateCmd:
		return "StartUpdateCmd"
	case TagUpdateFinished:
		return "UpdateFinished"
	case TagDiscovery:
		return "Discovery"
	case TagBatch:
		return "Batch"
	case TagJoinRequest:
		return "JoinRequest"
	case TagJoinAccept:
		return "JoinAccept"
	case TagLeave:
		return "Leave"
	case TagDirectoryDelta:
		return "DirectoryDelta"
	case TagUpdateHint:
		return "UpdateHint"
	case TagPullRequest:
		return "PullRequest"
	case TagPullResponse:
		return "PullResponse"
	case TagLinkDemand:
		return "LinkDemand"
	case TagHeartbeat:
		return "Heartbeat"
	default:
		return fmt.Sprintf("tag(0x%02x)", uint8(t))
	}
}

// TagOf returns the wire tag for a payload.
func TagOf(p Payload) (Tag, error) {
	switch p.(type) {
	case *SessionRequest:
		return TagSessionRequest, nil
	case *SessionData:
		return TagSessionData, nil
	case *SessionAck:
		return TagSessionAck, nil
	case *LinkClose:
		return TagLinkClose, nil
	case *SessionDone:
		return TagSessionDone, nil
	case *RulesBroadcast:
		return TagRulesBroadcast, nil
	case *StatsRequest:
		return TagStatsRequest, nil
	case *StatsReport:
		return TagStatsReport, nil
	case *StartUpdateCmd:
		return TagStartUpdateCmd, nil
	case *UpdateFinished:
		return TagUpdateFinished, nil
	case *Discovery:
		return TagDiscovery, nil
	case *Batch:
		return TagBatch, nil
	case *JoinRequest:
		return TagJoinRequest, nil
	case *JoinAccept:
		return TagJoinAccept, nil
	case *Leave:
		return TagLeave, nil
	case *DirectoryDelta:
		return TagDirectoryDelta, nil
	case *UpdateHint:
		return TagUpdateHint, nil
	case *PullRequest:
		return TagPullRequest, nil
	case *PullResponse:
		return TagPullResponse, nil
	case *LinkDemand:
		return TagLinkDemand, nil
	case *Heartbeat:
		return TagHeartbeat, nil
	default:
		return 0, fmt.Errorf("msg: no wire tag for %T", p)
	}
}

// ---------------------------------------------------------------------------
// append primitives

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendStrings(dst []byte, ss []string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(ss)))
	for _, s := range ss {
		dst = appendString(dst, s)
	}
	return dst
}

func appendTuple(dst []byte, t relation.Tuple) []byte {
	dst = binary.AppendUvarint(dst, uint64(t.EncodedLen()))
	return relation.EncodeTuple(dst, t)
}

func appendTuples(dst []byte, ts []relation.Tuple) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(ts)))
	for _, t := range ts {
		dst = appendTuple(dst, t)
	}
	return dst
}

func appendIntMap(dst []byte, m map[string]int) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(m)))
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		dst = appendString(dst, k)
		dst = binary.AppendVarint(dst, int64(m[k]))
	}
	return dst
}

func appendStringMap(dst []byte, m map[string]string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(m)))
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		dst = appendString(dst, k)
		dst = appendString(dst, m[k])
	}
	return dst
}

// appendDirEntries preserves slice order (producers emit entries sorted by
// node, keeping the encoding deterministic like the sorted maps).
func appendDirEntries(dst []byte, es []DirEntry) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(es)))
	for _, e := range es {
		dst = appendString(dst, e.Node)
		dst = appendString(dst, e.Addr)
		dst = binary.AppendUvarint(dst, e.Epoch)
		if e.Deleted {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	}
	return dst
}

// ---------------------------------------------------------------------------
// decode cursor

// reader walks a payload body with a sticky error, so decoders read fields
// in sequence and check once at the end.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	u, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail("msg: bad uvarint at offset %d", r.off)
		return 0
	}
	r.off += n
	return u
}

func (r *reader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.fail("msg: bad varint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

// count reads an element count and sanity-bounds it against the bytes left
// (every element costs at least one byte), so a corrupt count cannot force a
// huge allocation.
func (r *reader) count() int {
	u := r.uvarint()
	if r.err != nil {
		return 0
	}
	if u > uint64(len(r.b)-r.off) {
		r.fail("msg: count %d exceeds %d remaining bytes", u, len(r.b)-r.off)
		return 0
	}
	return int(u)
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > len(r.b)-r.off {
		r.fail("msg: need %d bytes, have %d", n, len(r.b)-r.off)
		return nil
	}
	b := r.b[r.off : r.off+n]
	r.off += n
	return b
}

func (r *reader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.b)-r.off) {
		r.fail("msg: string length %d exceeds %d remaining bytes", n, len(r.b)-r.off)
		return ""
	}
	return string(r.take(int(n)))
}

func (r *reader) strings() []string {
	n := r.count()
	if n == 0 {
		return nil
	}
	out := make([]string, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		out = append(out, r.str())
	}
	return out
}

func (r *reader) tuple() relation.Tuple {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.b)-r.off) {
		r.fail("msg: tuple length %d exceeds %d remaining bytes", n, len(r.b)-r.off)
		return nil
	}
	b := r.take(int(n))
	t := make(relation.Tuple, 0, 4)
	for off := 0; off < len(b); {
		v, vn, err := relation.DecodeValue(b[off:])
		if err != nil {
			r.fail("msg: tuple value %d: %v", len(t), err)
			return nil
		}
		t = append(t, v)
		off += vn
	}
	return t
}

func (r *reader) tuples() []relation.Tuple {
	n := r.count()
	if n == 0 {
		return nil
	}
	out := make([]relation.Tuple, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		out = append(out, r.tuple())
	}
	return out
}

func (r *reader) intMap() map[string]int {
	n := r.count()
	if n == 0 {
		return nil
	}
	out := make(map[string]int, n)
	for i := 0; i < n && r.err == nil; i++ {
		k := r.str()
		out[k] = int(r.varint())
	}
	return out
}

func (r *reader) stringMap() map[string]string {
	n := r.count()
	if n == 0 {
		return nil
	}
	out := make(map[string]string, n)
	for i := 0; i < n && r.err == nil; i++ {
		k := r.str()
		out[k] = r.str()
	}
	return out
}

func (r *reader) dirEntries() []DirEntry {
	n := r.count()
	if n == 0 {
		return nil
	}
	out := make([]DirEntry, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		e := DirEntry{Node: r.str(), Addr: r.str(), Epoch: r.uvarint()}
		if db := r.take(1); len(db) == 1 {
			e.Deleted = db[0] != 0
		}
		out = append(out, e)
	}
	return out
}

// ---------------------------------------------------------------------------
// per-payload encodings

func appendUpdateReport(dst []byte, u *UpdateReport) []byte {
	dst = appendString(dst, u.SID)
	dst = append(dst, byte(u.Kind))
	dst = appendString(dst, u.Origin)
	dst = binary.AppendVarint(dst, u.StartUnixNano)
	dst = binary.AppendVarint(dst, u.EndUnixNano)
	dst = appendIntMap(dst, u.MsgsPerRule)
	dst = appendIntMap(dst, u.BytesPerRule)
	dst = appendIntMap(dst, u.TuplesPerRule)
	dst = appendStrings(dst, u.Queried)
	dst = appendStrings(dst, u.SentTo)
	for _, v := range []int{
		u.SentMsgs, u.SentBytes, u.LongestPath, u.NewTuples, u.SkippedDepth,
		u.LinksClosedEarly, u.LinksClosedForced, u.CompensatedLost,
		u.ExportsFull, u.ExportsIncremental, u.ExportsFallback,
		u.SkippedByWatermark, u.SuppressedBindings, u.IncrementalMsgs,
		u.EvalErrors, u.CacheHits, u.CacheMisses,
	} {
		dst = binary.AppendVarint(dst, int64(v))
	}
	return dst
}

func (r *reader) updateReport() UpdateReport {
	var u UpdateReport
	u.SID = r.str()
	if kb := r.take(1); len(kb) == 1 {
		u.Kind = Kind(kb[0])
	}
	u.Origin = r.str()
	u.StartUnixNano = r.varint()
	u.EndUnixNano = r.varint()
	u.MsgsPerRule = r.intMap()
	u.BytesPerRule = r.intMap()
	u.TuplesPerRule = r.intMap()
	u.Queried = r.strings()
	u.SentTo = r.strings()
	for _, p := range []*int{
		&u.SentMsgs, &u.SentBytes, &u.LongestPath, &u.NewTuples, &u.SkippedDepth,
		&u.LinksClosedEarly, &u.LinksClosedForced, &u.CompensatedLost,
		&u.ExportsFull, &u.ExportsIncremental, &u.ExportsFallback,
		&u.SkippedByWatermark, &u.SuppressedBindings, &u.IncrementalMsgs,
		&u.EvalErrors, &u.CacheHits, &u.CacheMisses,
	} {
		*p = int(r.varint())
	}
	return u
}

// AppendPayload appends the body encoding of p (tag not included — the tag
// travels in the frame header; see TagOf).
func AppendPayload(dst []byte, p Payload) ([]byte, error) {
	switch m := p.(type) {
	case *SessionRequest:
		dst = appendString(dst, m.SID)
		dst = append(dst, byte(m.Kind))
		dst = appendString(dst, m.Origin)
		dst = appendStrings(dst, m.Path)
		dst = binary.AppendUvarint(dst, uint64(len(m.Rules)))
		for _, rd := range m.Rules {
			dst = appendString(dst, rd.ID)
			dst = appendString(dst, rd.Text)
		}
		return dst, nil
	case *SessionData:
		dst = appendString(dst, m.SID)
		dst = append(dst, byte(m.Kind))
		dst = appendString(dst, m.Origin)
		dst = appendString(dst, m.RuleID)
		dst = appendTuples(dst, m.Bindings)
		dst = appendStrings(dst, m.Path)
		dst = binary.AppendVarint(dst, int64(m.Seq))
		dst = append(dst, byte(m.Mode))
		dst = binary.AppendVarint(dst, int64(m.Skipped))
		return dst, nil
	case *SessionAck:
		dst = appendString(dst, m.SID)
		dst = binary.AppendVarint(dst, int64(m.N))
		return dst, nil
	case *LinkClose:
		dst = appendString(dst, m.SID)
		dst = appendString(dst, m.RuleID)
		return dst, nil
	case *SessionDone:
		dst = appendString(dst, m.SID)
		dst = appendString(dst, m.Origin)
		return dst, nil
	case *RulesBroadcast:
		dst = binary.AppendVarint(dst, int64(m.Version))
		dst = appendString(dst, m.Text)
		return dst, nil
	case *StatsRequest:
		dst = appendString(dst, m.ID)
		dst = appendString(dst, m.ReplyTo)
		dst = appendString(dst, m.Addr)
		return dst, nil
	case *StatsReport:
		dst = appendString(dst, m.ID)
		dst = appendString(dst, m.Node)
		dst = binary.AppendUvarint(dst, uint64(len(m.Reports)))
		for i := range m.Reports {
			dst = appendUpdateReport(dst, &m.Reports[i])
		}
		return dst, nil
	case *StartUpdateCmd:
		dst = appendString(dst, m.SID)
		dst = appendString(dst, m.ReplyTo)
		return dst, nil
	case *UpdateFinished:
		dst = appendString(dst, m.SID)
		dst = appendString(dst, m.Node)
		dst = appendUpdateReport(dst, &m.Report)
		return dst, nil
	case *Discovery:
		return appendStringMap(dst, m.Known), nil
	case *JoinRequest:
		dst = appendString(dst, m.Node)
		dst = appendString(dst, m.Addr)
		return dst, nil
	case *JoinAccept:
		dst = appendString(dst, m.Node)
		dst = binary.AppendUvarint(dst, m.Epoch)
		dst = binary.AppendVarint(dst, int64(m.RulesVersion))
		dst = appendString(dst, m.RulesText)
		dst = appendDirEntries(dst, m.Directory)
		return dst, nil
	case *Leave:
		dst = appendString(dst, m.Node)
		dst = binary.AppendUvarint(dst, m.Epoch)
		return dst, nil
	case *DirectoryDelta:
		return appendDirEntries(dst, m.Entries), nil
	case *UpdateHint:
		dst = appendString(dst, m.RuleID)
		dst = binary.AppendUvarint(dst, m.LSN)
		return dst, nil
	case *PullRequest:
		dst = appendString(dst, m.RuleID)
		dst = binary.AppendUvarint(dst, m.SinceLSN)
		return dst, nil
	case *PullResponse:
		dst = appendString(dst, m.RuleID)
		dst = binary.AppendUvarint(dst, m.AtLSN)
		dst = append(dst, byte(m.Mode))
		dst = binary.AppendVarint(dst, int64(m.Skipped))
		dst = appendTuples(dst, m.Bindings)
		return dst, nil
	case *LinkDemand:
		dst = appendString(dst, m.RuleID)
		dst = append(dst, m.Mode)
		return dst, nil
	case *Heartbeat:
		dst = binary.AppendUvarint(dst, m.Seq)
		return dst, nil
	case *Batch:
		dst = binary.AppendUvarint(dst, uint64(len(m.Payloads)))
		for _, inner := range m.Payloads {
			tag, err := TagOf(inner)
			if err != nil {
				return nil, err
			}
			if tag == TagBatch {
				return nil, fmt.Errorf("msg: batch nested inside batch")
			}
			body, err := AppendPayload(nil, inner)
			if err != nil {
				return nil, err
			}
			dst = append(dst, byte(tag))
			dst = binary.AppendUvarint(dst, uint64(len(body)))
			dst = append(dst, body...)
		}
		return dst, nil
	default:
		return nil, fmt.Errorf("msg: cannot encode %T", p)
	}
}

// DecodePayload decodes a payload body for the given tag. The whole body
// must be consumed: trailing bytes are an error.
func DecodePayload(tag Tag, body []byte) (Payload, error) {
	r := &reader{b: body}
	p, err := decodePayload(tag, r)
	if err != nil {
		return nil, err
	}
	if r.err != nil {
		return nil, fmt.Errorf("msg: decode %s: %w", tag, r.err)
	}
	if r.off != len(body) {
		return nil, fmt.Errorf("msg: decode %s: %d trailing bytes", tag, len(body)-r.off)
	}
	return p, nil
}

func decodePayload(tag Tag, r *reader) (Payload, error) {
	switch tag {
	case TagSessionRequest:
		m := &SessionRequest{}
		m.SID = r.str()
		if kb := r.take(1); len(kb) == 1 {
			m.Kind = Kind(kb[0])
		}
		m.Origin = r.str()
		m.Path = r.strings()
		n := r.count()
		if n > 0 {
			m.Rules = make([]RuleDef, 0, n)
			for i := 0; i < n && r.err == nil; i++ {
				m.Rules = append(m.Rules, RuleDef{ID: r.str(), Text: r.str()})
			}
		}
		return m, nil
	case TagSessionData:
		m := &SessionData{}
		m.SID = r.str()
		if kb := r.take(1); len(kb) == 1 {
			m.Kind = Kind(kb[0])
		}
		m.Origin = r.str()
		m.RuleID = r.str()
		m.Bindings = r.tuples()
		m.Path = r.strings()
		m.Seq = int(r.varint())
		if mb := r.take(1); len(mb) == 1 {
			m.Mode = ExportMode(mb[0])
		}
		m.Skipped = int(r.varint())
		return m, nil
	case TagSessionAck:
		return &SessionAck{SID: r.str(), N: int(r.varint())}, nil
	case TagLinkClose:
		return &LinkClose{SID: r.str(), RuleID: r.str()}, nil
	case TagSessionDone:
		return &SessionDone{SID: r.str(), Origin: r.str()}, nil
	case TagRulesBroadcast:
		return &RulesBroadcast{Version: int(r.varint()), Text: r.str()}, nil
	case TagStatsRequest:
		return &StatsRequest{ID: r.str(), ReplyTo: r.str(), Addr: r.str()}, nil
	case TagStatsReport:
		m := &StatsReport{ID: r.str(), Node: r.str()}
		n := r.count()
		if n > 0 {
			m.Reports = make([]UpdateReport, 0, n)
			for i := 0; i < n && r.err == nil; i++ {
				m.Reports = append(m.Reports, r.updateReport())
			}
		}
		return m, nil
	case TagStartUpdateCmd:
		return &StartUpdateCmd{SID: r.str(), ReplyTo: r.str()}, nil
	case TagUpdateFinished:
		m := &UpdateFinished{SID: r.str(), Node: r.str()}
		m.Report = r.updateReport()
		return m, nil
	case TagDiscovery:
		return &Discovery{Known: r.stringMap()}, nil
	case TagJoinRequest:
		return &JoinRequest{Node: r.str(), Addr: r.str()}, nil
	case TagJoinAccept:
		m := &JoinAccept{Node: r.str(), Epoch: r.uvarint()}
		m.RulesVersion = int(r.varint())
		m.RulesText = r.str()
		m.Directory = r.dirEntries()
		return m, nil
	case TagLeave:
		return &Leave{Node: r.str(), Epoch: r.uvarint()}, nil
	case TagDirectoryDelta:
		return &DirectoryDelta{Entries: r.dirEntries()}, nil
	case TagUpdateHint:
		return &UpdateHint{RuleID: r.str(), LSN: r.uvarint()}, nil
	case TagPullRequest:
		return &PullRequest{RuleID: r.str(), SinceLSN: r.uvarint()}, nil
	case TagPullResponse:
		m := &PullResponse{RuleID: r.str(), AtLSN: r.uvarint()}
		if mb := r.take(1); len(mb) == 1 {
			m.Mode = ExportMode(mb[0])
		}
		m.Skipped = int(r.varint())
		m.Bindings = r.tuples()
		return m, nil
	case TagLinkDemand:
		m := &LinkDemand{RuleID: r.str()}
		if mb := r.take(1); len(mb) == 1 {
			m.Mode = mb[0]
		}
		return m, nil
	case TagHeartbeat:
		return &Heartbeat{Seq: r.uvarint()}, nil
	case TagBatch:
		n := r.count()
		m := &Batch{}
		if n > 0 {
			m.Payloads = make([]Payload, 0, n)
		}
		for i := 0; i < n && r.err == nil; i++ {
			tb := r.take(1)
			if len(tb) != 1 {
				break
			}
			inner := Tag(tb[0])
			if inner == TagBatch {
				return nil, fmt.Errorf("msg: batch nested inside batch")
			}
			bl := r.uvarint()
			if r.err != nil {
				break
			}
			if bl > uint64(len(r.b)-r.off) {
				r.fail("msg: batch item length %d exceeds %d remaining bytes", bl, len(r.b)-r.off)
				break
			}
			body := r.take(int(bl))
			p, err := DecodePayload(inner, body)
			if err != nil {
				return nil, fmt.Errorf("msg: batch item %d: %w", i, err)
			}
			m.Payloads = append(m.Payloads, p)
		}
		return m, nil
	default:
		return nil, fmt.Errorf("msg: unknown payload tag 0x%02x", uint8(tag))
	}
}

// AppendEnvelope appends the body encoding of an envelope (sender name then
// payload body) and returns the payload's tag for the frame header.
func AppendEnvelope(dst []byte, e Envelope) ([]byte, Tag, error) {
	tag, err := TagOf(e.Payload)
	if err != nil {
		return nil, 0, err
	}
	dst = appendString(dst, e.From)
	dst, err = AppendPayload(dst, e.Payload)
	if err != nil {
		return nil, 0, err
	}
	return dst, tag, nil
}

// DecodeEnvelope decodes an envelope body produced by AppendEnvelope.
func DecodeEnvelope(tag Tag, body []byte) (Envelope, error) {
	r := &reader{b: body}
	from := r.str()
	if r.err != nil {
		return Envelope{}, fmt.Errorf("msg: decode envelope: %w", r.err)
	}
	p, err := DecodePayload(tag, body[r.off:])
	if err != nil {
		return Envelope{}, err
	}
	return Envelope{From: from, Payload: p}, nil
}
