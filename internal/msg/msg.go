// Package msg defines the typed messages coDB peers exchange — the
// vocabulary the paper's JXTA layer envelopes carry: global update and query
// requests, streamed query results, acknowledgements for the diffusing
// computation, link-close notifications, coordination-rule broadcasts,
// statistics collection, and topology discovery gossip.
//
// Payloads are plain structs; the TCP transport serialises them with the
// binary codec in this package (see binary.go and internal/wire), the
// in-process bus passes them by value. Size() gives a transport-independent
// measure of a payload's data volume, used by the statistics module (paper
// §4: "the volume of the data in each message").
//
// # Batching
//
// Batch is the one payload that is transport machinery rather than protocol
// vocabulary: it packs several payloads bound for the same destination into
// a single envelope, so the outbound pipeline (transport.Outbox) can
// coalesce a burst of queued messages into one frame on the wire. Batches
// are exactly one level deep (a Batch never contains a Batch), and they are
// invisible above the transport: receiving transports unpack a Batch and
// deliver its payloads as individual envelopes, in order, so peer and core
// logic — including the Dijkstra–Scholten per-message accounting — never
// sees one.
package msg

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sync/atomic"

	"codb/internal/relation"
)

// Kind distinguishes the two session kinds sharing the propagation engine.
type Kind uint8

const (
	// KindUpdate is a global update: results are materialised into the
	// local databases (paper §2–3).
	KindUpdate Kind = iota + 1
	// KindQuery is query-time fetching: results live in a per-session
	// overlay and answer one query at the origin (paper §1).
	KindQuery
	// KindScoped is a query-dependent update (paper §2's "global and
	// query-dependent update requests"): propagation follows the
	// relevance-filtered, path-labelled query discipline, but results are
	// materialised into the local databases along the way.
	KindScoped
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindUpdate:
		return "update"
	case KindQuery:
		return "query"
	case KindScoped:
		return "scoped"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Payload is implemented by every message type.
type Payload interface {
	// Size returns the transport-independent data volume of the payload
	// in bytes (tuple payloads measured by their binary encoding).
	Size() int
}

// RuleDef carries one coordination rule by ID and concrete syntax, so that
// update requests can establish links on peers that have not seen a
// configuration broadcast (paper §2: requests contain "definitions of
// appropriate coordination rules").
type RuleDef struct {
	ID   string
	Text string
}

// SessionRequest asks the receiver (the source side of the listed rules) to
// export data for them and to propagate the session onward. Path is the
// node-ID label of the paper's diffusing computation: a node never forwards
// a request to a node already in the label.
type SessionRequest struct {
	SID    string
	Kind   Kind
	Origin string
	Path   []string
	Rules  []RuleDef
}

// Size implements Payload.
func (m *SessionRequest) Size() int {
	n := len(m.SID) + len(m.Origin) + 2
	for _, p := range m.Path {
		n += len(p)
	}
	for _, r := range m.Rules {
		n += len(r.ID) + len(r.Text)
	}
	return n
}

// ExportMode records how the exporter produced a SessionData batch, so the
// statistical module can attribute wire savings to the cross-session
// incremental machinery.
type ExportMode uint8

const (
	// ExportFull is a full evaluation of the link (first session, paper-
	// faithful FullExport mode, or a wrapper without change capture).
	ExportFull ExportMode = iota
	// ExportIncremental is a cross-session incremental export: only tuples
	// committed past the link's persistent LSN watermark were evaluated.
	ExportIncremental
	// ExportFallback is a full re-evaluation forced by lost change history
	// (changelog truncation, deletes, or a restart past a checkpoint).
	ExportFallback
	// ExportSessionDelta is the in-session semi-naive step: a re-export
	// triggered by data that arrived during the same session.
	ExportSessionDelta
)

// String names the mode.
func (m ExportMode) String() string {
	switch m {
	case ExportFull:
		return "full"
	case ExportIncremental:
		return "incremental"
	case ExportFallback:
		return "fallback"
	case ExportSessionDelta:
		return "delta"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// SessionData ships frontier bindings for one coordination rule from its
// source node to its target node. Kind and Origin let a node that first
// hears of a session through data (updates push proactively) join it. Path
// is the update propagation path the data has travelled (for the
// longest-path statistic); Seq numbers the batches per (session, rule).
// Mode tells the importer how the batch was produced; Skipped counts the
// body tuples the exporter's watermark let it skip re-evaluating.
type SessionData struct {
	SID      string
	Kind     Kind
	Origin   string
	RuleID   string
	Bindings []relation.Tuple
	Path     []string
	Seq      int
	Mode     ExportMode
	Skipped  int
}

// Size implements Payload.
func (m *SessionData) Size() int {
	n := len(m.SID) + len(m.RuleID) + 8
	for _, p := range m.Path {
		n += len(p)
	}
	for _, t := range m.Bindings {
		n += t.EncodedLen()
	}
	return n
}

// SessionAck acknowledges N basic messages of a session, for the
// Dijkstra–Scholten termination detection. Acks are control traffic: they
// are not themselves acknowledged.
type SessionAck struct {
	SID string
	N   int
}

// Size implements Payload.
func (m *SessionAck) Size() int { return len(m.SID) + 4 }

// LinkClose tells the importing node that the exporter has closed the given
// incoming link for this session (paper §3's link state protocol).
type LinkClose struct {
	SID    string
	RuleID string
}

// Size implements Payload.
func (m *LinkClose) Size() int { return len(m.SID) + len(m.RuleID) }

// SessionDone announces that the initiator has detected termination; it
// floods the network (receivers forward it once) so that every participant
// finalises its per-session state and reports.
type SessionDone struct {
	SID    string
	Origin string
}

// Size implements Payload.
func (m *SessionDone) Size() int { return len(m.SID) + len(m.Origin) }

// RulesBroadcast carries a coordination-rules configuration file from the
// super-peer to every peer (paper §4). Version lets peers ignore stale
// re-deliveries during the flood.
type RulesBroadcast struct {
	Version int
	Text    string
}

// Size implements Payload.
func (m *RulesBroadcast) Size() int { return len(m.Text) + 4 }

// StatsRequest asks every peer for its accumulated statistics. It floods
// the network (forwarded once per ID); peers reply directly to ReplyTo,
// dialing Addr when they have no pipe to it yet.
type StatsRequest struct {
	ID      string
	ReplyTo string
	Addr    string
}

// Size implements Payload.
func (m *StatsRequest) Size() int { return len(m.ID) + len(m.ReplyTo) + len(m.Addr) }

// UpdateReport is the per-node record of one session, as the paper's
// statistical module accumulates it (§4).
type UpdateReport struct {
	SID    string
	Kind   Kind
	Origin string
	// StartUnixNano/EndUnixNano bound the node's participation.
	StartUnixNano, EndUnixNano int64
	// MsgsPerRule / BytesPerRule / TuplesPerRule count the SessionData
	// messages received per coordination rule and their volume.
	MsgsPerRule   map[string]int
	BytesPerRule  map[string]int
	TuplesPerRule map[string]int
	// SentMsgs / SentBytes count data shipped to acquaintances.
	SentMsgs, SentBytes int
	// LongestPath is the longest update propagation path observed.
	LongestPath int
	// Queried lists acquaintances this node sent requests to; SentTo lists
	// nodes this node shipped results to.
	Queried, SentTo []string
	// NewTuples counts tuples actually added locally; SkippedDepth counts
	// chase firings dropped by the depth bound.
	NewTuples, SkippedDepth int
	// LinksClosedEarly counts links closed by the dependency condition of
	// the paper's link-state protocol; LinksClosedForced counts links
	// closed only when the termination detector fired (cyclic
	// dependencies: "all query results did not bring any new data").
	LinksClosedEarly, LinksClosedForced int
	// CompensatedLost counts basic messages written off by the sender
	// because their pipe failed (core.CompensateLost / CompensatePeerLoss):
	// nonzero means the session terminated without those messages being
	// delivered, i.e. possibly incomplete materialisation on a dynamic
	// network.
	CompensatedLost int
	// ExportsFull / ExportsIncremental / ExportsFallback count this node's
	// initial link exports by mode (see ExportMode); SkippedByWatermark
	// counts body tuples the persistent LSN watermarks let incremental
	// exports skip re-evaluating; SuppressedBindings counts bindings the
	// persistent shipped-fingerprint sets kept off the wire.
	ExportsFull, ExportsIncremental, ExportsFallback int
	SkippedByWatermark                               int
	SuppressedBindings                               int
	// IncrementalMsgs counts received SessionData batches produced by
	// cross-session incremental exports.
	IncrementalMsgs int
	// EvalErrors counts chase/eval failures during this node's exports and
	// answer streaming; nonzero means the session's result may be
	// incomplete (the errors are also surfaced on core.Result).
	EvalErrors int
	// CacheHits / CacheMisses report the query-result cache's involvement
	// in producing this report: set on the synthetic reports of the peer's
	// concurrent local read path (1/0 or 0/1 per query), zero for
	// distributed sessions, which never consult the cache.
	CacheHits, CacheMisses int
}

// StatsReport returns a peer's reports to the super-peer.
type StatsReport struct {
	ID      string
	Node    string
	Reports []UpdateReport
}

// Size implements Payload.
func (m *StatsReport) Size() int {
	n := len(m.ID) + len(m.Node)
	for _, r := range m.Reports {
		n += len(r.SID) + len(r.Origin) + 8*6
		n += 16 * (len(r.MsgsPerRule) + len(r.BytesPerRule) + len(r.TuplesPerRule))
		for _, q := range r.Queried {
			n += len(q)
		}
		for _, s := range r.SentTo {
			n += len(s)
		}
	}
	return n
}

// StartUpdateCmd asks a peer to initiate a global update — how the
// super-peer drives experiments (paper §4). The peer reports completion to
// ReplyTo with an UpdateFinished message.
type StartUpdateCmd struct {
	SID     string
	ReplyTo string
}

// Size implements Payload.
func (m *StartUpdateCmd) Size() int { return len(m.SID) + len(m.ReplyTo) }

// UpdateFinished reports a completed update to the requester of a
// StartUpdateCmd.
type UpdateFinished struct {
	SID    string
	Node   string
	Report UpdateReport
}

// Size implements Payload.
func (m *UpdateFinished) Size() int { return len(m.SID) + len(m.Node) + 64 }

// Discovery gossips known peers (name -> dial address; empty address for
// in-process transports). Supports the paper's Figure 3 "discovered peers"
// view.
type Discovery struct {
	Known map[string]string
}

// Size implements Payload.
func (m *Discovery) Size() int {
	n := 0
	for k, v := range m.Known {
		n += len(k) + len(v)
	}
	return n
}

// DirEntry is one epoch-stamped directory fact: where a node can be
// dialed, or — with Deleted — that it left the network. Epochs make the
// directory last-writer-wins: a fact only replaces an older one when its
// epoch is higher (or it tombstones the same epoch), so a peer rejoining
// at a new address overrides the stale entry everywhere, and a tombstone
// lets the directory finally forget a departed name instead of re-dialing
// it forever. Epoch 0 is the static-bootstrap epoch (configuration files,
// legacy Discovery gossip).
type DirEntry struct {
	Node    string
	Addr    string
	Epoch   uint64
	Deleted bool
}

// JoinRequest announces a node to an admitting peer: the joiner's name and
// dial-back address. The admitter assigns the joiner's directory epoch and
// answers with a JoinAccept.
type JoinRequest struct {
	Node string
	Addr string
}

// Size implements Payload.
func (m *JoinRequest) Size() int { return len(m.Node) + len(m.Addr) }

// JoinAccept admits a node into a live network: the admitting peer's name,
// the directory epoch assigned to the joiner, the current coordination-rules
// configuration (version + concrete syntax, so the joiner needs no separate
// broadcast), and an epoch-stamped snapshot of the whole directory.
type JoinAccept struct {
	Node         string
	Epoch        uint64
	RulesVersion int
	RulesText    string
	Directory    []DirEntry
}

// Size implements Payload.
func (m *JoinAccept) Size() int {
	n := len(m.Node) + len(m.RulesText) + 12
	for _, e := range m.Directory {
		n += len(e.Node) + len(e.Addr) + 9
	}
	return n
}

// Leave is a coordinated departure notice: survivors tombstone the node's
// directory entry at the given epoch, write off its in-flight deficits and
// reset their exporter watermarks toward it.
type Leave struct {
	Node  string
	Epoch uint64
}

// Size implements Payload.
func (m *Leave) Size() int { return len(m.Node) + 8 }

// DirectoryDelta floods epoch-stamped directory facts (joins, address
// changes, tombstones). Receivers apply the entries locally and never
// forward them: deltas are star-flooded by the peer that produced them, so
// the epoch precedence needs no gossip-loop suppression.
type DirectoryDelta struct {
	Entries []DirEntry
}

// Size implements Payload.
func (m *DirectoryDelta) Size() int {
	n := 0
	for _, e := range m.Entries {
		n += len(e.Node) + len(e.Addr) + 9
	}
	return n
}

// UpdateHint is the pull-policy replacement for a SessionData export: the
// exporter of a pull-configured link announces that its extent advanced to
// LSN without shipping the delta. The importer marks the link stale and
// pulls the actual bindings on demand (next local query touching the
// relation, or a staleness deadline). Hints are control traffic, not basic
// messages: they carry no session obligations and are never counted in the
// Dijkstra–Scholten deficit.
type UpdateHint struct {
	RuleID string
	// LSN is the exporter's commit LSN at hint time — the horizon a pull
	// must reach to clear the staleness.
	LSN uint64
}

// Size implements Payload.
func (m *UpdateHint) Size() int { return len(m.RuleID) + 8 }

// PullRequest asks the exporter of a rule to serve the incremental export
// the importer would have received under push: every binding derivable from
// tuples committed past SinceLSN (the importer's view of the exporter's
// watermark; the exporter serves from its own durable watermark, which is
// authoritative). Control traffic, sessionless.
type PullRequest struct {
	RuleID   string
	SinceLSN uint64
}

// Size implements Payload.
func (m *PullRequest) Size() int { return len(m.RuleID) + 8 }

// PullResponse answers a PullRequest with exactly the incremental export
// the link would have pushed: frontier bindings for the rule, the
// exporter's commit LSN the pull caught up to, how the batch was produced
// (incremental from the watermark, or a full/fallback re-export when change
// history was lost), and the body tuples the watermark let the exporter
// skip re-evaluating.
type PullResponse struct {
	RuleID   string
	AtLSN    uint64
	Mode     ExportMode
	Skipped  int
	Bindings []relation.Tuple
}

// Size implements Payload.
func (m *PullResponse) Size() int {
	n := len(m.RuleID) + 10
	for _, t := range m.Bindings {
		n += t.EncodedLen()
	}
	return n
}

// LinkDemand is the adaptive policy's feedback signal: the importer of a
// rule tells the exporter which effective mode (push or pull) its observed
// read demand justifies. Exporters honor it only for links configured
// adaptive; fixed push/pull/filter links ignore it. Control traffic,
// sessionless.
type LinkDemand struct {
	RuleID string
	// Mode is the requested effective mode: 0 = push, 1 = pull.
	Mode uint8
}

// Size implements Payload.
func (m *LinkDemand) Size() int { return len(m.RuleID) + 1 }

// Heartbeat announces pipe liveness: the transport emits one per interval on
// every V2 pipe so the receiving peer's suspicion state machine can tell a
// quiet-but-healthy acquaintance from a partitioned one. Like the rest of
// the 0x20 family, heartbeats are control traffic, not basic messages: they
// carry no session obligations and are never counted in the
// Dijkstra–Scholten deficit. Seq increments per emitting transport, so a
// resumed stream is distinguishable from a duplicate in traces.
type Heartbeat struct {
	Seq uint64
}

// Size implements Payload.
func (m *Heartbeat) Size() int { return 8 }

// Batch packs several payloads for the same destination into one envelope
// (see the package comment). Order is the send order; receivers deliver the
// packed payloads individually, preserving it.
type Batch struct {
	Payloads []Payload
}

// Size implements Payload (the sum of the packed payloads).
func (m *Batch) Size() int {
	n := 0
	for _, p := range m.Payloads {
		n += p.Size()
	}
	return n
}

// sidCounter disambiguates IDs minted in the same process.
var sidCounter atomic.Uint64

// NewSID mints a globally unique session ID, prefixed by the minting node
// (the paper uses JXTA-generated identifiers).
func NewSID(node string) string {
	var salt [6]byte
	if _, err := rand.Read(salt[:]); err != nil {
		// Fall back to the counter alone; uniqueness within the process
		// still holds.
		binary.LittleEndian.PutUint32(salt[:4], uint32(sidCounter.Load()))
	}
	return fmt.Sprintf("%s-%d-%s", node, sidCounter.Add(1), hex.EncodeToString(salt[:]))
}
