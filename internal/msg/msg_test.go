package msg

import (
	"strings"
	"testing"

	"codb/internal/relation"
)

func TestNewSIDUniqueAndPrefixed(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		sid := NewSID("peer1")
		if !strings.HasPrefix(sid, "peer1-") {
			t.Fatalf("sid %q not prefixed", sid)
		}
		if seen[sid] {
			t.Fatalf("duplicate sid %q", sid)
		}
		seen[sid] = true
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	payloads := []Payload{
		&SessionRequest{SID: "s1", Kind: KindUpdate, Origin: "a", Path: []string{"a", "b"},
			Rules: []RuleDef{{ID: "r1", Text: "A.p(x) <- B.q(x)"}}},
		&SessionData{SID: "s1", RuleID: "r1", Seq: 3, Path: []string{"b"},
			Bindings: []relation.Tuple{{relation.Int(1), relation.Null("d1~ff")}}},
		&SessionAck{SID: "s1", N: 2},
		&LinkClose{SID: "s1", RuleID: "r1"},
		&SessionDone{SID: "s1", Origin: "a"},
		&RulesBroadcast{Version: 7, Text: "rule r1: ..."},
		&StatsRequest{ID: "q1"},
		&StatsReport{ID: "q1", Node: "b", Reports: []UpdateReport{{
			SID: "s1", Kind: KindUpdate, Origin: "a",
			MsgsPerRule: map[string]int{"r1": 2}, LongestPath: 3,
			Queried: []string{"c"}, SentTo: []string{"a"},
		}}},
		&Discovery{Known: map[string]string{"a": "127.0.0.1:9000"}},
	}
	for _, p := range payloads {
		enc, err := Encode(Envelope{From: "x", Payload: p})
		if err != nil {
			t.Fatalf("encode %T: %v", p, err)
		}
		dec, err := Decode(enc)
		if err != nil {
			t.Fatalf("decode %T: %v", p, err)
		}
		if dec.From != "x" {
			t.Errorf("From = %q", dec.From)
		}
		if _, ok := dec.Payload.(Payload); !ok {
			t.Errorf("decoded payload %T does not implement Payload", dec.Payload)
		}
		if p.Size() <= 0 {
			t.Errorf("%T.Size() = %d, want > 0", p, p.Size())
		}
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := Decode([]byte("not a frame")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestSessionDataRoundTripPreservesValues(t *testing.T) {
	in := &SessionData{SID: "s", RuleID: "r", Bindings: []relation.Tuple{
		{relation.Int(-5), relation.Float(2.5), relation.Str("x\x00y"), relation.Bool(true), relation.Null("d2~aa")},
	}}
	enc, err := Encode(Envelope{From: "n", Payload: in})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	out := dec.Payload.(*SessionData)
	if len(out.Bindings) != 1 || !out.Bindings[0].Equal(in.Bindings[0]) {
		t.Errorf("bindings = %v", out.Bindings)
	}
}

func TestSizeGrowsWithContent(t *testing.T) {
	small := &SessionData{SID: "s", RuleID: "r", Bindings: []relation.Tuple{{relation.Int(1)}}}
	big := &SessionData{SID: "s", RuleID: "r", Bindings: []relation.Tuple{
		{relation.Int(1)}, {relation.Int(2)}, {relation.Str("a long string value")},
	}}
	if small.Size() >= big.Size() {
		t.Errorf("Size: small=%d big=%d", small.Size(), big.Size())
	}
}

func TestKindString(t *testing.T) {
	if KindUpdate.String() != "update" || KindQuery.String() != "query" {
		t.Error("Kind names wrong")
	}
}

func TestBatchSizeAndRoundtrip(t *testing.T) {
	inner := []Payload{
		&SessionAck{SID: "s", N: 3},
		&SessionData{SID: "s", RuleID: "r", Bindings: []relation.Tuple{{relation.Int(1), relation.Int(2)}}},
	}
	b := &Batch{Payloads: inner}
	want := inner[0].Size() + inner[1].Size()
	if b.Size() != want {
		t.Errorf("Batch.Size = %d, want %d", b.Size(), want)
	}
	enc, err := Encode(Envelope{From: "a", Payload: b})
	if err != nil {
		t.Fatal(err)
	}
	env, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	back, ok := env.Payload.(*Batch)
	if !ok || len(back.Payloads) != 2 {
		t.Fatalf("roundtrip = %+v", env.Payload)
	}
	if d, ok := back.Payloads[1].(*SessionData); !ok || len(d.Bindings) != 1 || d.Bindings[0][0] != relation.Int(1) {
		t.Errorf("batched data payload = %+v", back.Payloads[1])
	}
}
