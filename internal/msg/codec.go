package msg

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// Envelope is what a transport moves: a payload tagged with the sending
// node. (The receiving node is implicit in the pipe.)
type Envelope struct {
	From    string
	Payload Payload
}

func init() {
	gob.Register(&SessionRequest{})
	gob.Register(&SessionData{})
	gob.Register(&SessionAck{})
	gob.Register(&LinkClose{})
	gob.Register(&SessionDone{})
	gob.Register(&RulesBroadcast{})
	gob.Register(&StatsRequest{})
	gob.Register(&StatsReport{})
	gob.Register(&StartUpdateCmd{})
	gob.Register(&UpdateFinished{})
	gob.Register(&Discovery{})
	gob.Register(&Batch{})
}

// Encode serialises an envelope for the wire.
func Encode(e Envelope) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&e); err != nil {
		return nil, fmt.Errorf("msg: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// Decode deserialises an envelope from the wire.
func Decode(b []byte) (Envelope, error) {
	var e Envelope
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&e); err != nil {
		return Envelope{}, fmt.Errorf("msg: decode: %w", err)
	}
	return e, nil
}
