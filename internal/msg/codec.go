package msg

import "fmt"

// Envelope is what a transport moves: a payload tagged with the sending
// node. (The receiving node is implicit in the pipe.)
type Envelope struct {
	From    string
	Payload Payload
}

// Encode serialises an envelope as a self-describing byte string: the
// payload tag followed by the envelope body (see AppendEnvelope). The TCP
// transport does not use this form — it carries the tag in the frame header
// — but tools that persist or compare envelopes outside a connection do.
func Encode(e Envelope) ([]byte, error) {
	body, tag, err := AppendEnvelope(nil, e)
	if err != nil {
		return nil, fmt.Errorf("msg: encode: %w", err)
	}
	out := make([]byte, 0, 1+len(body))
	out = append(out, byte(tag))
	return append(out, body...), nil
}

// Decode deserialises an envelope produced by Encode.
func Decode(b []byte) (Envelope, error) {
	if len(b) == 0 {
		return Envelope{}, fmt.Errorf("msg: decode: empty input")
	}
	e, err := DecodeEnvelope(Tag(b[0]), b[1:])
	if err != nil {
		return Envelope{}, fmt.Errorf("msg: decode: %w", err)
	}
	return e, nil
}
