package wire_test

import (
	"bytes"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"codb/internal/msg"
	"codb/internal/relation"
	"codb/internal/wire"
)

var update = flag.Bool("update", false, "rewrite the golden frame fixtures and fuzz corpus seeds")

// goldenPayloads returns one deterministic sample per payload type,
// exercising every field kind the codec handles (strings, string slices,
// tuples of every value kind, sorted maps, signed counters, nesting).
func goldenPayloads() []msg.Payload {
	tuples := []relation.Tuple{
		{relation.Int(-7), relation.Str("a\x00b"), relation.Float(2.5), relation.Bool(true)},
		{relation.Null("unk"), relation.Int(1 << 40)},
	}
	report := msg.UpdateReport{
		SID:           "N1-1-abc",
		Kind:          msg.KindUpdate,
		Origin:        "N1",
		StartUnixNano: 1700000000000000001,
		EndUnixNano:   1700000000000000002,
		MsgsPerRule:   map[string]int{"r1": 2, "r2": 1},
		BytesPerRule:  map[string]int{"r1": 512},
		TuplesPerRule: map[string]int{"r2": 9},
		SentMsgs:      3, SentBytes: 640, LongestPath: 2,
		Queried: []string{"N2", "N3"}, SentTo: []string{"N2"},
		NewTuples: 12, SkippedDepth: 1,
		LinksClosedEarly: 2, LinksClosedForced: 1, CompensatedLost: 0,
		ExportsFull: 1, ExportsIncremental: 2, ExportsFallback: 0,
		SkippedByWatermark: 40, SuppressedBindings: 5, IncrementalMsgs: 2,
		EvalErrors: 0, CacheHits: 1, CacheMisses: 1,
	}
	return []msg.Payload{
		&msg.SessionRequest{
			SID: "N1-1-abc", Kind: msg.KindUpdate, Origin: "N1",
			Path:  []string{"N1", "N2"},
			Rules: []msg.RuleDef{{ID: "r1", Text: "r1: N2.s(x) <- N1.r(x)"}},
		},
		&msg.SessionData{
			SID: "N1-1-abc", Kind: msg.KindScoped, Origin: "N1", RuleID: "r1",
			Bindings: tuples, Path: []string{"N1"}, Seq: 3,
			Mode: msg.ExportIncremental, Skipped: 17,
		},
		&msg.SessionAck{SID: "N1-1-abc", N: 4},
		&msg.LinkClose{SID: "N1-1-abc", RuleID: "r1"},
		&msg.SessionDone{SID: "N1-1-abc", Origin: "N1"},
		&msg.RulesBroadcast{Version: 2, Text: "node N1 addr :0\nend\n"},
		&msg.StatsRequest{ID: "q-1", ReplyTo: "super", Addr: "127.0.0.1:9"},
		&msg.StatsReport{ID: "q-1", Node: "N1", Reports: []msg.UpdateReport{report}},
		&msg.StartUpdateCmd{SID: "N1-1-abc", ReplyTo: "super"},
		&msg.UpdateFinished{SID: "N1-1-abc", Node: "N1", Report: report},
		&msg.Discovery{Known: map[string]string{"N1": "127.0.0.1:9", "N2": ""}},
		&msg.JoinRequest{Node: "N4", Addr: "127.0.0.1:7004"},
		&msg.JoinAccept{
			Node: "super", Epoch: 3, RulesVersion: 2,
			RulesText: "node N1 addr :0\nend\n",
			Directory: []msg.DirEntry{
				{Node: "N1", Addr: "127.0.0.1:7001", Epoch: 1},
				{Node: "N2", Addr: "", Epoch: 2, Deleted: true},
			},
		},
		&msg.Leave{Node: "N4", Epoch: 3},
		&msg.DirectoryDelta{Entries: []msg.DirEntry{
			{Node: "N4", Addr: "127.0.0.1:7004", Epoch: 3},
			{Node: "N5", Addr: "", Epoch: 9, Deleted: true},
		}},
		&msg.Batch{Payloads: []msg.Payload{
			&msg.SessionAck{SID: "N1-1-abc", N: 1},
			&msg.LinkClose{SID: "N1-1-abc", RuleID: "r1"},
		}},
		&msg.UpdateHint{RuleID: "r1", LSN: 1 << 33},
		&msg.PullRequest{RuleID: "r1", SinceLSN: 42},
		&msg.PullResponse{
			RuleID: "r1", AtLSN: 99, Mode: msg.ExportIncremental, Skipped: 3,
			Bindings: tuples,
		},
		&msg.LinkDemand{RuleID: "r1", Mode: 1},
		&msg.Heartbeat{Seq: 1 << 21},
	}
}

// frameVersion is the lowest protocol version that carries a tag: the
// pull-family payloads (0x20+) only exist on V2 connections.
func frameVersion(tag msg.Tag) byte {
	if byte(tag) >= 0x20 {
		return wire.V2
	}
	return wire.V1
}

// goldenFrame builds the full frame for a payload, exactly as the TCP
// transport writes it, at the lowest version that can carry the tag.
func goldenFrame(t *testing.T, p msg.Payload) ([]byte, msg.Tag) {
	t.Helper()
	body, tag, err := msg.AppendEnvelope(nil, msg.Envelope{From: "N1", Payload: p})
	if err != nil {
		t.Fatalf("encode %T: %v", p, err)
	}
	return wire.AppendFrame(nil, frameVersion(tag), byte(tag), body), tag
}

func fixturePath(tag msg.Tag) string {
	return filepath.Join("testdata", strings.ToLower(tag.String())+".hex")
}

// TestGoldenVectors pins the byte-level encoding of every payload type:
// an accidental format change (field order, varint width, map ordering)
// fails against the committed fixtures instead of silently forking the
// protocol.
func TestGoldenVectors(t *testing.T) {
	for _, p := range goldenPayloads() {
		frame, tag := goldenFrame(t, p)
		t.Run(tag.String(), func(t *testing.T) {
			path := fixturePath(tag)
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(wrapHex(frame)), 0o644); err != nil {
					t.Fatal(err)
				}
				writeCorpusSeed(t, tag, frame)
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing fixture (run with -update): %v", err)
			}
			wantBytes, err := hex.DecodeString(strings.Join(strings.Fields(string(want)), ""))
			if err != nil {
				t.Fatalf("corrupt fixture %s: %v", path, err)
			}
			if !bytes.Equal(frame, wantBytes) {
				t.Fatalf("encoding of %s changed:\n got  %x\n want %x", tag, frame, wantBytes)
			}
			// The fixture must also decode back to the original payload.
			h, body, err := wire.ReadFrame(bytes.NewReader(wantBytes))
			if err != nil {
				t.Fatalf("fixture frame unreadable: %v", err)
			}
			if h.Version != frameVersion(tag) || h.Type != byte(tag) {
				t.Fatalf("fixture header = %+v, want version %d type %d", h, frameVersion(tag), tag)
			}
			env, err := msg.DecodeEnvelope(msg.Tag(h.Type), body)
			if err != nil {
				t.Fatalf("fixture body undecodable: %v", err)
			}
			if env.From != "N1" || !reflect.DeepEqual(env.Payload, p) {
				t.Fatalf("decode mismatch:\n got  %#v\n want %#v", env.Payload, p)
			}
		})
	}
}

// wrapHex renders bytes as line-wrapped hex for readable fixtures.
func wrapHex(b []byte) string {
	s := hex.EncodeToString(b)
	var sb strings.Builder
	for len(s) > 64 {
		sb.WriteString(s[:64])
		sb.WriteByte('\n')
		s = s[64:]
	}
	sb.WriteString(s)
	sb.WriteByte('\n')
	return sb.String()
}

// writeCorpusSeed commits a frame as a FuzzWireFrame corpus entry so the
// fuzzer always starts from every payload shape.
func writeCorpusSeed(t *testing.T, tag msg.Tag, frame []byte) {
	t.Helper()
	dir := filepath.Join("testdata", "fuzz", "FuzzWireFrame")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	content := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", frame)
	name := "seed_" + strings.ToLower(tag.String())
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestHelloRoundTrip pins the handshake encoding and negotiation rules.
func TestHelloRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := wire.Hello{Name: "N1", Min: wire.MinVersion, Max: wire.MaxVersion}
	if err := wire.WriteHello(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := wire.ReadHello(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("hello round trip: got %+v, want %+v", out, in)
	}
}

func TestNegotiate(t *testing.T) {
	mk := func(min, max byte) wire.Hello { return wire.Hello{Name: "x", Min: min, Max: max} }
	cases := []struct {
		ours, theirs wire.Hello
		want         byte
		ok           bool
	}{
		{mk(1, 1), mk(1, 1), 1, true},
		{mk(1, 3), mk(2, 5), 3, true},
		{mk(2, 2), mk(1, 1), 0, false}, // their max below our min
		{mk(1, 1), mk(2, 9), 0, false}, // our max below their min
	}
	for i, c := range cases {
		v, err := wire.Negotiate(c.ours, c.theirs)
		if c.ok && (err != nil || v != c.want) {
			t.Fatalf("case %d: got (%d, %v), want %d", i, v, err, c.want)
		}
		if !c.ok && err == nil {
			t.Fatalf("case %d: expected negotiation failure, got version %d", i, v)
		}
	}
}

func TestFrameCorruptionDetected(t *testing.T) {
	frame, _ := goldenFrame(t, &msg.SessionAck{SID: "s", N: 1})

	bad := append([]byte(nil), frame...)
	bad[0] ^= 0xFF // magic
	if _, _, err := wire.ReadFrame(bytes.NewReader(bad)); err == nil {
		t.Fatal("corrupted magic accepted")
	}

	bad = append([]byte(nil), frame...)
	bad[len(bad)-1] ^= 0x01 // body byte: CRC must catch it
	if _, _, err := wire.ReadFrame(bytes.NewReader(bad)); err == nil {
		t.Fatal("corrupted body accepted")
	}

	if _, _, err := wire.ReadFrame(bytes.NewReader(frame[:len(frame)-2])); err == nil {
		t.Fatal("truncated frame accepted")
	}
}
