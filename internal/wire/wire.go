// Package wire defines coDB's versioned peer-to-peer frame format — the
// byte layout every TCP pipe speaks, replacing the earlier per-connection
// gob streams with individually decodable frames.
//
// # Frame layout
//
//	offset  size  field
//	0       2     magic     0xC0DB, big-endian
//	2       1     version   protocol version of this frame
//	3       1     type      payload type tag (wire tags < 0x10, msg tags >= 0x10)
//	4       4     length    body length in bytes, big-endian
//	8       4     crc       CRC-32 (IEEE) of the body, big-endian
//	12      n     body      payload encoding (see internal/msg)
//
// Unlike gob, frames carry no stream state: each one decodes on its own,
// and a corrupt frame is detected by magic/CRC before the payload decoder
// runs. Undecodable frames still tear the pipe down (the peer layer
// re-establishes pipes and compensates the termination detector), but a
// slow or interleaved reader can no longer be desynchronised.
//
// # Handshake and version negotiation
//
// The first frame in each direction is a Hello (type TypeHello, version =
// sender's maximum) carrying the sender's node name and supported version
// range [Min, Max]. Each side computes the negotiated version as
// min(Max_a, Max_b); the handshake fails unless that is >= max(Min_a,
// Min_b). Every subsequent frame on the connection must carry exactly the
// negotiated version; anything else — wrong version, unknown type, bad
// magic or CRC — fails the pipe cleanly.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Magic identifies a coDB frame. A connection that opens with anything
// else is not speaking this protocol.
const Magic uint16 = 0xC0DB

// HeaderLen is the fixed frame header size in bytes.
const HeaderLen = 12

// Protocol versions this implementation speaks.
const (
	// V1 is the first frame protocol version: the header above with
	// internal/msg binary payload bodies (tags 0x10–0x1F).
	V1 = 1

	// V2 adds the pull-propagation payload family (msg tags 0x20+:
	// UpdateHint, PullRequest, PullResponse, LinkDemand). The frame layout
	// is unchanged; a connection negotiated at V1 simply never carries
	// those tags — the peer layer degrades pull links to push toward
	// V1-only peers.
	V2 = 2

	// MinVersion and MaxVersion bound the supported range offered in the
	// handshake.
	MinVersion = V1
	MaxVersion = V2
)

// TypeHello tags the handshake frame. Tags below 0x10 are reserved for the
// wire layer; payload tags (msg.Tag) start at 0x10.
const TypeHello byte = 0x01

// MaxFrame bounds a frame body to keep a malicious or corrupt peer from
// forcing huge allocations.
const MaxFrame = 64 << 20

// Frame decode errors. ReadFrame and ParseHello wrap these so callers can
// distinguish protocol violations from plain I/O failures.
var (
	ErrBadMagic     = errors.New("wire: bad magic")
	ErrBadCRC       = errors.New("wire: body CRC mismatch")
	ErrFrameTooBig  = errors.New("wire: frame exceeds MaxFrame")
	ErrBadVersion   = errors.New("wire: unsupported protocol version")
	ErrBadHello     = errors.New("wire: malformed hello")
	ErrNoCommonVers = errors.New("wire: no common protocol version")
)

// Header is a parsed frame header.
type Header struct {
	Version byte
	Type    byte
	Length  uint32
	CRC     uint32
}

// PutHeader writes the header for body into dst, which must be at least
// HeaderLen bytes.
func PutHeader(dst []byte, version, typ byte, body []byte) {
	binary.BigEndian.PutUint16(dst[0:2], Magic)
	dst[2] = version
	dst[3] = typ
	binary.BigEndian.PutUint32(dst[4:8], uint32(len(body)))
	binary.BigEndian.PutUint32(dst[8:12], crc32.ChecksumIEEE(body))
}

// ParseHeader decodes and validates a raw header: magic and body bound are
// checked here, the CRC only once the body is read.
func ParseHeader(b []byte) (Header, error) {
	if len(b) < HeaderLen {
		return Header{}, fmt.Errorf("wire: short header: %d bytes", len(b))
	}
	if binary.BigEndian.Uint16(b[0:2]) != Magic {
		return Header{}, ErrBadMagic
	}
	h := Header{
		Version: b[2],
		Type:    b[3],
		Length:  binary.BigEndian.Uint32(b[4:8]),
		CRC:     binary.BigEndian.Uint32(b[8:12]),
	}
	if h.Length > MaxFrame {
		return Header{}, ErrFrameTooBig
	}
	return h, nil
}

// AppendFrame appends a complete frame (header + body) to dst.
func AppendFrame(dst []byte, version, typ byte, body []byte) []byte {
	var hdr [HeaderLen]byte
	PutHeader(hdr[:], version, typ, body)
	dst = append(dst, hdr[:]...)
	return append(dst, body...)
}

// ReadFrame reads one frame, verifying magic, size bound and body CRC.
func ReadFrame(r io.Reader) (Header, []byte, error) {
	var raw [HeaderLen]byte
	if _, err := io.ReadFull(r, raw[:]); err != nil {
		return Header{}, nil, err
	}
	h, err := ParseHeader(raw[:])
	if err != nil {
		return Header{}, nil, err
	}
	body := make([]byte, h.Length)
	if _, err := io.ReadFull(r, body); err != nil {
		return Header{}, nil, err
	}
	if crc32.ChecksumIEEE(body) != h.CRC {
		return Header{}, nil, ErrBadCRC
	}
	return h, body, nil
}

// WriteFrame writes one frame in a single Write call.
func WriteFrame(w io.Writer, version, typ byte, body []byte) error {
	if len(body) > MaxFrame {
		return ErrFrameTooBig
	}
	_, err := w.Write(AppendFrame(make([]byte, 0, HeaderLen+len(body)), version, typ, body))
	return err
}

// Hello is the handshake payload: the sender's identity and the protocol
// versions it can speak.
type Hello struct {
	Name string
	Min  byte
	Max  byte
}

// appendHelloBody encodes a hello body: min, max, uvarint name length, name.
func appendHelloBody(dst []byte, h Hello) []byte {
	dst = append(dst, h.Min, h.Max)
	dst = binary.AppendUvarint(dst, uint64(len(h.Name)))
	return append(dst, h.Name...)
}

// WriteHello sends the handshake frame for h. The frame's version field
// carries h.Max so even a future implementation that dropped V1 can parse
// the header.
func WriteHello(w io.Writer, h Hello) error {
	return WriteFrame(w, h.Max, TypeHello, appendHelloBody(nil, h))
}

// ReadHello reads and validates the first frame of a connection.
func ReadHello(r io.Reader) (Hello, error) {
	hdr, body, err := ReadFrame(r)
	if err != nil {
		return Hello{}, err
	}
	if hdr.Type != TypeHello {
		return Hello{}, fmt.Errorf("%w: first frame has type 0x%02x", ErrBadHello, hdr.Type)
	}
	return ParseHello(body)
}

// ParseHello decodes a hello body.
func ParseHello(body []byte) (Hello, error) {
	if len(body) < 3 {
		return Hello{}, fmt.Errorf("%w: %d byte body", ErrBadHello, len(body))
	}
	h := Hello{Min: body[0], Max: body[1]}
	n, sz := binary.Uvarint(body[2:])
	if sz <= 0 || n != uint64(len(body)-2-sz) {
		return Hello{}, fmt.Errorf("%w: bad name length", ErrBadHello)
	}
	if h.Min == 0 || h.Min > h.Max {
		return Hello{}, fmt.Errorf("%w: version range [%d,%d]", ErrBadHello, h.Min, h.Max)
	}
	h.Name = string(body[2+sz:])
	return h, nil
}

// Negotiate picks the version a connection will speak given both sides'
// hellos: the highest version both support, or ErrNoCommonVers when the
// ranges do not overlap.
func Negotiate(ours, theirs Hello) (byte, error) {
	v := ours.Max
	if theirs.Max < v {
		v = theirs.Max
	}
	if v < ours.Min || v < theirs.Min {
		return 0, fmt.Errorf("%w: ours [%d,%d], theirs [%d,%d]",
			ErrNoCommonVers, ours.Min, ours.Max, theirs.Min, theirs.Max)
	}
	return v, nil
}
