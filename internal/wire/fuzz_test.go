package wire_test

import (
	"bytes"
	"testing"

	"codb/internal/msg"
	"codb/internal/wire"
)

// FuzzWireFrame throws arbitrary bytes at the full inbound frame path the
// TCP read loop runs — header parse, CRC check, hello or payload decode —
// and checks two invariants: no panic or runaway allocation on garbage,
// and for every frame that does decode, re-encoding the decoded envelope
// is a fixed point (encode(decode(encode(e))) == encode(e)), so decoding
// loses nothing the codec can express. The committed corpus under
// testdata/fuzz/FuzzWireFrame seeds one frame per payload type (written by
// the golden-vector test's -update mode).
func FuzzWireFrame(f *testing.F) {
	for _, p := range goldenPayloads() {
		body, tag, err := msg.AppendEnvelope(nil, msg.Envelope{From: "N1", Payload: p})
		if err != nil {
			f.Fatal(err)
		}
		f.Add(wire.AppendFrame(nil, frameVersion(tag), byte(tag), body))
	}
	var hello bytes.Buffer
	if err := wire.WriteHello(&hello, wire.Hello{Name: "N1", Min: 1, Max: 1}); err != nil {
		f.Fatal(err)
	}
	f.Add(hello.Bytes())
	f.Add([]byte{0xC0, 0xDB, 1, 0x11, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte("not a frame at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		h, body, err := wire.ReadFrame(bytes.NewReader(data))
		if err != nil {
			return // rejected input: the only requirement is no panic
		}
		if h.Type < 0x10 {
			_, _ = wire.ParseHello(body)
			return
		}
		env, err := msg.DecodeEnvelope(msg.Tag(h.Type), body)
		if err != nil {
			return
		}
		// Accepted frame: the decoded envelope must re-encode, and the
		// re-encoding must be a fixed point. (The input bytes themselves
		// need not be reproduced — non-minimal varints decode but are
		// never produced.)
		b1, tag1, err := msg.AppendEnvelope(nil, env)
		if err != nil {
			t.Fatalf("decoded envelope does not re-encode: %v", err)
		}
		env2, err := msg.DecodeEnvelope(tag1, b1)
		if err != nil {
			t.Fatalf("re-encoded envelope does not decode: %v", err)
		}
		b2, tag2, err := msg.AppendEnvelope(nil, env2)
		if err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if tag1 != tag2 || !bytes.Equal(b1, b2) {
			t.Fatalf("encoding not a fixed point:\n b1 %x\n b2 %x", b1, b2)
		}
	})
}
