package codb

// Race-stress test for the lazy propagation layer: a chain of pull links
// runs hint floods (every update invalidates downstream links), concurrent
// explicit pulls, read-triggered pulls, and a checkpoint storm all against
// the same databases — with changelog rings far smaller than the traffic,
// so every pull is served across the changelog-spill window that the
// checkpoints keep rewriting. Exactly the interleavings the propagation
// state machine (stale marks, in-flight dedup, waiter wakeup) and the
// exporter's persistent watermarks must survive. Run under -race in CI.

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestPullHintCheckpointRaceStress(t *testing.T) {
	nw := NewNetworkWithOptions(NetworkOptions{
		Storage: StorageGroup{ChangelogLimit: 6, SegmentBytes: 256},
		Propagation: PropagationGroup{
			Policies: map[string]string{"r1": "pull", "r2": "pull"},
		},
	})
	defer nw.Close()
	names := []string{"A", "B", "C"}
	for _, name := range names {
		if _, err := nw.AddDurablePeer(name, t.TempDir(), "data(k int, v int)"); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range []struct{ id, text string }{
		{"r1", "A.data(k, v) <- B.data(k, v)"},
		{"r2", "B.data(k, v) <- C.data(k, v)"},
	} {
		if err := nw.AddRule(r.id, r.text); err != nil {
			t.Fatal(err)
		}
	}

	var stop atomic.Bool
	var wg sync.WaitGroup

	// Checkpoint storm: every database rewrites its durable state as fast
	// as it can, racing the spill-served Changes scans that pulls run and
	// the export-state persistence that serving a pull triggers.
	checkpoints := make([]atomic.Int64, len(names))
	for i, name := range names {
		db := nw.dbs[name]
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for !stop.Load() {
				if err := db.Checkpoint(); err != nil {
					t.Errorf("checkpoint %s: %v", names[i], err)
					return
				}
				checkpoints[i].Add(1)
			}
		}(i)
	}

	// Explicit pullers: both importers hammer their pull link directly,
	// racing each other, the read-triggered pulls, and the hint floods
	// over the same in-flight dedup window.
	pulls := make([]atomic.Int64, 2)
	for i, pl := range []struct{ node, rule string }{{"A", "r1"}, {"B", "r2"}} {
		wg.Add(1)
		go func(i int, node, rule string) {
			defer wg.Done()
			p := nw.Peer(node)
			for !stop.Load() {
				if _, err := p.PullLink(ctxT(t), rule); err != nil {
					t.Errorf("pull %s at %s: %v", rule, node, err)
					return
				}
				pulls[i].Add(1)
			}
		}(i, pl.node, pl.rule)
	}

	// Readers: local queries at the importers take the beforeRead hook,
	// turning every stale mark into a synchronous read-triggered pull that
	// races the explicit pullers for the same waiters.
	for _, node := range []string{"A", "B"} {
		wg.Add(1)
		go func(node string) {
			defer wg.Done()
			for !stop.Load() {
				if _, err := nw.LocalQuery(node, `ans(k) :- data(k, v), v >= 0`, AllAnswers); err != nil {
					t.Errorf("reader %s: %v", node, err)
					return
				}
			}
		}(node)
	}

	// Hint floods: updates at the chain's head invalidate r2 (and, as the
	// pulls cascade, r1) over and over while everything above is running.
	const rounds = 12
	for round := 0; round < rounds; round++ {
		rows := make([]Tuple, 10)
		for j := range rows {
			rows[j] = Row(Int(round*1_000+j), Int(round))
		}
		if err := nw.Insert("C", "data", rows...); err != nil {
			t.Fatal(err)
		}
		if _, err := nw.Update(ctxT(t), "C"); err != nil {
			t.Fatalf("update round %d: %v", round, err)
		}
	}
	stop.Store(true)
	wg.Wait()

	for i := range names {
		if checkpoints[i].Load() == 0 {
			t.Fatalf("checkpoint storm never ran at %s", names[i])
		}
	}
	for i, pl := range []string{"r1", "r2"} {
		if pulls[i].Load() == 0 {
			t.Fatalf("explicit puller on %s never completed a pull", pl)
		}
	}

	// Quiescent sanity: catch the chain up, then every tuple of C must
	// have reached B and A exactly (copy rules and set semantics make the
	// counts equal).
	if _, err := nw.CatchUp(ctxT(t)); err != nil {
		t.Fatal(err)
	}
	cntA, cntB, cntC := nw.Peer("A").Count("data"), nw.Peer("B").Count("data"), nw.Peer("C").Count("data")
	if cntC != rounds*10 || cntB != cntC || cntA != cntB {
		t.Fatalf("materialisation incomplete after stress: A=%d B=%d C=%d, want all %d", cntA, cntB, cntC, rounds*10)
	}
}
